package schedcheck

import (
	"bytes"
	"strings"
	"testing"

	"wasched/internal/sched"
	"wasched/internal/workload"
)

const sampleSWF = `; header
1  0    -1 300  56 -1 -1  56 600 -1 1 7 1 1 1 -1 -1 -1
2  60   -1 120  28 -1 -1  28  -1 -1 1 8 1 1 1 -1 -1 -1
3  120  -1 900 112 -1 -1 112 1000 -1 1 7 1 1 1 -1 -1 -1
5  240  -1 600 9999 -1 -1 9999 900 -1 1 7 1 1 1 -1 -1 -1
`

// TestSimJobsFromSWFMirrorsParseSWF proves the replay converter and the
// full-prototype converter agree on shape and on which jobs carry
// synthetic I/O — they consume the same deterministic stream.
func TestSimJobsFromSWFMirrorsParseSWF(t *testing.T) {
	opts := workload.DefaultSWFOptions()
	opts.IOFraction = 0.5
	opts.BBFraction = 0.5
	opts.BBGiBPerNode = 4
	full, err := workload.ParseSWF(strings.NewReader(sampleSWF), opts)
	if err != nil {
		t.Fatal(err)
	}
	sims, quirks, err := LoadSWFSimJobs(strings.NewReader(sampleSWF), opts)
	if err != nil {
		t.Fatal(err)
	}
	if quirks.TooWide != 1 {
		t.Fatalf("quirks: %+v", quirks)
	}
	if len(sims) != len(full.Jobs) {
		t.Fatalf("sim jobs %d != full jobs %d", len(sims), len(full.Jobs))
	}
	for i, sj := range sims {
		fj := full.Jobs[i]
		if sj.Nodes != fj.Spec.Nodes || sj.Limit != fj.Spec.Limit || sj.Submit != fj.At {
			t.Fatalf("job %d shape: sim %+v vs full %+v", i, sj, fj.Spec)
		}
		// The fingerprint encodes the I/O assignment in both converters.
		if sj.Fingerprint != fj.Spec.Fingerprint {
			t.Fatalf("job %d I/O assignment diverged: %s vs %s", i, sj.Fingerprint, fj.Spec.Fingerprint)
		}
		if isIO := strings.HasPrefix(sj.Fingerprint, "swf-io-"); isIO != (sj.Rate > 0) {
			t.Fatalf("job %d rate %g inconsistent with fingerprint %s", i, sj.Rate, sj.Fingerprint)
		}
		// And so does the burst-buffer assignment, from its own stream.
		if sj.BBBytes != fj.Spec.BBBytes {
			t.Fatalf("job %d BB assignment diverged: %g vs %g", i, sj.BBBytes, fj.Spec.BBBytes)
		}
		if hasBB := strings.HasSuffix(sj.Fingerprint, "-bb"); hasBB != (sj.BBBytes > 0) {
			t.Fatalf("job %d BB bytes %g inconsistent with fingerprint %s", i, sj.BBBytes, sj.Fingerprint)
		}
	}
}

// TestSWFReplayEndToEnd runs a synthetic SWF trace through every policy's
// replay with the round checks on — the archive-scale path in miniature.
func TestSWFReplayEndToEnd(t *testing.T) {
	var buf bytes.Buffer
	gen := workload.SWFGenConfig{Jobs: 300, Seed: 11, Nodes: 15, CoresPerNode: 56, QuirkEvery: 60}
	if err := workload.WriteSyntheticSWF(&buf, gen); err != nil {
		t.Fatal(err)
	}
	opts := workload.DefaultSWFOptions()
	jobs, quirks, err := LoadSWFSimJobs(bytes.NewReader(buf.Bytes()), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !quirks.Any() {
		t.Fatalf("generated trace should carry quirks, got %+v", quirks)
	}
	const nodes = 15
	limit := 20.0 * 1024 * 1024 * 1024
	policies := []sched.Policy{
		sched.NodePolicy{TotalNodes: nodes},
		sched.IOAwarePolicy{TotalNodes: nodes, ThroughputLimit: limit},
		sched.AdaptivePolicy{TotalNodes: nodes, ThroughputLimit: limit, TwoGroup: true},
		sched.AdaptivePolicy{TotalNodes: nodes, ThroughputLimit: limit, TwoGroup: false},
	}
	for _, p := range policies {
		res := Replay(jobs, ReplayConfig{
			Policy:    p,
			Options:   sched.Options{MaxJobTest: sched.SlurmDefaultTestLimit},
			Nodes:     nodes,
			Limit:     limit,
			MaxRounds: 500000,
		})
		if len(res.Jobs) != len(jobs) {
			t.Fatalf("%s: completed %d of %d jobs", p.Name(), len(res.Jobs), len(jobs))
		}
		for _, v := range res.Check.Violations {
			t.Errorf("%s: %s: %s", p.Name(), v.Invariant, v.Detail)
		}
	}
}
