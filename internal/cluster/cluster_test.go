package cluster

import (
	"math"
	"testing"

	"wasched/internal/des"
	"wasched/internal/pfs"
)

func newTestEnv(t *testing.T, nodes int) (*des.Engine, *Cluster) {
	t.Helper()
	eng := des.NewEngine()
	cfg := pfs.DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.BurstBoost = 1
	cfg.MDSLatency = 0
	cfg.MDSOpsPerSec = 1e9
	fs, err := pfs.New(eng, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(eng, fs, nodes, "node", 1)
	if err != nil {
		t.Fatal(err)
	}
	return eng, cl
}

func TestNewValidation(t *testing.T) {
	eng := des.NewEngine()
	if _, err := New(eng, nil, 0, "n", 1); err == nil {
		t.Fatal("zero nodes must error")
	}
	cl, err := New(eng, nil, 3, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	names := cl.NodeNames()
	if len(names) != 3 || names[0] != "node001" || names[2] != "node003" {
		t.Fatalf("default prefix names: %v", names)
	}
}

func TestAllocationAccounting(t *testing.T) {
	eng, cl := newTestEnv(t, 15)
	if cl.Size() != 15 || cl.FreeNodes() != 15 || cl.BusyNodes() != 0 {
		t.Fatal("initial accounting")
	}
	exits := 0
	e, err := cl.Start("j1", 4, SleepProgram{D: 10 * des.Second}, func(*Execution) { exits++ })
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Nodes) != 4 || cl.FreeNodes() != 11 || cl.BusyNodes() != 4 {
		t.Fatalf("after start: nodes=%v free=%d", e.Nodes, cl.FreeNodes())
	}
	if got, ok := cl.Running("j1"); !ok || got != e {
		t.Fatal("Running lookup")
	}
	if cl.RunningCount() != 1 {
		t.Fatal("RunningCount")
	}
	eng.Run(des.TimeFromSeconds(20))
	if exits != 1 || cl.FreeNodes() != 15 {
		t.Fatalf("after exit: exits=%d free=%d", exits, cl.FreeNodes())
	}
	if !e.Ended() || e.Exit != ExitCompleted || e.EndedAt != des.TimeFromSeconds(10) {
		t.Fatalf("execution record: %+v", e)
	}
}

func TestStartErrors(t *testing.T) {
	_, cl := newTestEnv(t, 3)
	if _, err := cl.Start("j1", 0, SleepProgram{D: des.Second}, nil); err == nil {
		t.Fatal("zero nodes must error")
	}
	if _, err := cl.Start("j1", 4, SleepProgram{D: des.Second}, nil); err == nil {
		t.Fatal("over-allocation must error")
	}
	if _, err := cl.Start("j1", 1, SleepProgram{D: des.Second}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Start("j1", 1, SleepProgram{D: des.Second}, nil); err == nil {
		t.Fatal("duplicate job ID must error")
	}
}

func TestKillReleasesNodesAndCancelsWork(t *testing.T) {
	eng, cl := newTestEnv(t, 2)
	var exit *Execution
	_, err := cl.Start("j1", 1, WriteProgram{Threads: 2, BytesPerThread: 100 * pfs.GiB},
		func(e *Execution) { exit = e })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(des.TimeFromSeconds(5))
	if !cl.Kill("j1") {
		t.Fatal("kill failed")
	}
	if exit == nil || exit.Exit != ExitKilled || exit.Exit.String() != "killed" {
		t.Fatalf("exit: %+v", exit)
	}
	if cl.FreeNodes() != 2 || cl.FS().ActiveStreams() != 0 {
		t.Fatalf("kill must release nodes (%d) and streams (%d)",
			cl.FreeNodes(), cl.FS().ActiveStreams())
	}
	eng.Run(des.TimeFromSeconds(10000))
	if exit.Exit != ExitKilled {
		t.Fatal("done must not fire after stop")
	}
	if cl.Kill("j1") {
		t.Fatal("double kill must fail")
	}
	if cl.Kill("ghost") {
		t.Fatal("killing unknown job must fail")
	}
}

func TestSleepProgramDuration(t *testing.T) {
	eng, cl := newTestEnv(t, 1)
	var endAt des.Time
	_, _ = cl.Start("s", 1, SleepProgram{D: 600 * des.Second}, func(e *Execution) { endAt = e.EndedAt })
	eng.Run(des.TimeFromSeconds(7200))
	if endAt != des.TimeFromSeconds(600) {
		t.Fatalf("sleep ended at %v", endAt)
	}
}

func TestWriteProgramTransfersAllBytes(t *testing.T) {
	eng, cl := newTestEnv(t, 1)
	var end *Execution
	_, _ = cl.Start("w", 1, WriteProgram{Threads: 8, BytesPerThread: 10 * pfs.GiB},
		func(e *Execution) { end = e })
	eng.Run(des.TimeFromSeconds(36000))
	if end == nil || end.Exit != ExitCompleted {
		t.Fatal("write job must complete")
	}
	got := cl.FS().TotalCounters().WriteBytes
	if math.Abs(got-80*pfs.GiB) > 16 {
		t.Fatalf("total bytes = %g, want 80 GiB", got)
	}
	// All I/O must be attributed to the job's single node.
	nodeBytes := cl.FS().NodeCounters(end.Nodes[0]).WriteBytes
	if math.Abs(nodeBytes-80*pfs.GiB) > 16 {
		t.Fatalf("node attribution = %g", nodeBytes)
	}
}

func TestWriteProgramSpreadsThreadsAcrossNodes(t *testing.T) {
	eng, cl := newTestEnv(t, 4)
	var end *Execution
	_, _ = cl.Start("w", 4, WriteProgram{Threads: 8, BytesPerThread: pfs.GiB},
		func(e *Execution) { end = e })
	eng.Run(des.TimeFromSeconds(36000))
	for _, n := range end.Nodes {
		b := cl.FS().NodeCounters(n).WriteBytes
		if math.Abs(b-2*pfs.GiB) > 16 { // 8 threads round-robin over 4 nodes
			t.Fatalf("node %s got %g bytes, want 2 GiB", n, b)
		}
	}
}

func TestReadProgram(t *testing.T) {
	eng, cl := newTestEnv(t, 1)
	done := false
	_, _ = cl.Start("r", 1, ReadProgram{Threads: 2, BytesPerThread: pfs.GiB},
		func(*Execution) { done = true })
	eng.Run(des.TimeFromSeconds(36000))
	if !done {
		t.Fatal("read job must complete")
	}
	c := cl.FS().TotalCounters()
	if math.Abs(c.ReadBytes-2*pfs.GiB) > 16 || c.WriteBytes != 0 {
		t.Fatalf("counters: %+v", c)
	}
}

func TestPhasedProgramRunsSequentially(t *testing.T) {
	eng, cl := newTestEnv(t, 1)
	var endAt des.Time
	prog := PhasedProgram{Phases: []Program{
		SleepProgram{D: 100 * des.Second},
		SleepProgram{D: 50 * des.Second},
	}}
	_, _ = cl.Start("p", 1, prog, func(e *Execution) { endAt = e.EndedAt })
	eng.Run(des.TimeFromSeconds(7200))
	if endAt != des.TimeFromSeconds(150) {
		t.Fatalf("phased end at %v, want 150s", endAt)
	}
}

func TestPhasedProgramStopMidPhase(t *testing.T) {
	eng, cl := newTestEnv(t, 1)
	completed := false
	prog := PhasedProgram{Phases: []Program{
		SleepProgram{D: 100 * des.Second},
		WriteProgram{Threads: 1, BytesPerThread: 500 * pfs.GiB},
	}}
	_, _ = cl.Start("p", 1, prog, func(e *Execution) { completed = e.Exit == ExitCompleted })
	eng.Run(des.TimeFromSeconds(110)) // inside the write phase
	cl.Kill("p")
	eng.Run(des.TimeFromSeconds(7200))
	if completed {
		t.Fatal("killed phased job must not complete")
	}
	if cl.FS().ActiveStreams() != 0 {
		t.Fatal("streams must be cancelled")
	}
}

func TestBurstyProgram(t *testing.T) {
	eng, cl := newTestEnv(t, 1)
	var endAt des.Time
	prog := BurstyProgram{Cycles: 3, Compute: 60 * des.Second, Threads: 1, BytesPerThread: 4 * pfs.GiB}
	_, _ = cl.Start("b", 1, prog, func(e *Execution) { endAt = e.EndedAt })
	eng.Run(des.TimeFromSeconds(36000))
	// Each cycle: 60 s compute + 4 GiB / 0.40 GiB/s = 10 s write → 70 s.
	want := 3 * 70.0
	if math.Abs(endAt.Seconds()-want) > 1 {
		t.Fatalf("bursty end at %.1fs, want ~%.0fs", endAt.Seconds(), want)
	}
}

func TestProgramPanics(t *testing.T) {
	eng, cl := newTestEnv(t, 1)
	cases := []Program{
		WriteProgram{Threads: 0, BytesPerThread: 1},
		ReadProgram{Threads: 0, BytesPerThread: 1},
		PhasedProgram{},
		BurstyProgram{Cycles: 0},
	}
	for i, prog := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("program %d must panic", i)
				}
			}()
			_, _ = cl.Start("x", 1, prog, nil)
		}()
		cl.Kill("x")
	}
	_ = eng
}

func TestNodeReuseIsDeterministic(t *testing.T) {
	run := func() []string {
		eng, cl := newTestEnv(t, 5)
		var got []string
		for i := 0; i < 3; i++ {
			e, _ := cl.Start(string(rune('a'+i)), 1, SleepProgram{D: des.Duration(i+1) * des.Second}, nil)
			got = append(got, e.Nodes[0])
		}
		eng.Run(des.TimeFromSeconds(100))
		e, _ := cl.Start("z", 2, SleepProgram{D: des.Second}, nil)
		got = append(got, e.Nodes...)
		return got
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allocation order differs: %v vs %v", a, b)
		}
	}
}

func TestNodeFailureDirect(t *testing.T) {
	eng, cl := newTestEnv(t, 3)
	if cl.DownNodes() != 0 {
		t.Fatal("initial down count")
	}
	if cl.FailNode("nope") {
		t.Fatal("unknown node")
	}
	names := cl.NodeNames()
	// Fail an idle node: it leaves the free pool.
	if !cl.FailNode(names[0]) || cl.FreeNodes() != 2 || cl.DownNodes() != 1 {
		t.Fatalf("idle failure: free=%d down=%d", cl.FreeNodes(), cl.DownNodes())
	}
	if !cl.FailNode(names[0]) || cl.DownNodes() != 1 {
		t.Fatal("repeat failure must be a counted-once no-op")
	}
	// Fail a busy node: the job dies with ExitNodeFail.
	var exit *Execution
	e, err := cl.Start("j", 2, SleepProgram{D: 500 * des.Second}, func(x *Execution) { exit = x })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(des.TimeFromSeconds(10))
	if !cl.FailNode(e.Nodes[0]) {
		t.Fatal("busy failure")
	}
	if exit == nil || exit.Exit != ExitNodeFail || exit.Exit.String() != "node-fail" {
		t.Fatalf("exit: %+v", exit)
	}
	// The healthy node of the allocation returns to free; the failed one
	// does not.
	if cl.FreeNodes() != 1 || cl.DownNodes() != 2 || cl.BusyNodes() != 0 {
		t.Fatalf("post-failure accounting: free=%d down=%d busy=%d",
			cl.FreeNodes(), cl.DownNodes(), cl.BusyNodes())
	}
	// Restore brings capacity back.
	if !cl.RestoreNode(names[0]) || cl.FreeNodes() != 2 {
		t.Fatalf("restore: free=%d", cl.FreeNodes())
	}
	if cl.RestoreNode(names[0]) {
		t.Fatal("double restore must report false")
	}
	if ExitCompleted.String() != "completed" || ExitKilled.String() != "killed" {
		t.Fatal("exit strings")
	}
}
