// Package ldms is a stand-in for the Lightweight Distributed Metric
// Service: per-node samplers read the Lustre client counters of the file
// system model on a fixed period, and an aggregator flushes the samples
// into a SOS container on its own period.
//
// Modelling the pipeline explicitly (instead of letting the analytics read
// the simulator directly) reproduces the latencies and quantisation a real
// monitoring stack imposes: the scheduler sees counters that are up to
// SampleInterval+AggregateInterval old, sampled on per-node phases.
package ldms

import (
	"fmt"

	"wasched/internal/des"
	"wasched/internal/pfs"
	"wasched/internal/sos"
)

// ContainerName is the SOS container the daemon writes to.
const ContainerName = "lustre_client"

// Columns of the lustre_client schema.
const (
	ColWriteBytes = iota
	ColReadBytes
	ColWriteOps
	ColReadOps
)

// Schema returns the SOS schema for Lustre client counters.
func Schema() sos.Schema {
	return sos.Schema{
		Name:    ContainerName,
		Metrics: []string{"write_bytes", "read_bytes", "write_ops", "read_ops"},
	}
}

// Config holds the monitoring cadence.
type Config struct {
	// SampleInterval is each node sampler's period (LDMS default: 1 s).
	SampleInterval des.Duration
	// AggregateInterval is the period at which buffered samples become
	// visible in the store.
	AggregateInterval des.Duration
	// PhaseJitter offsets each node's sampler start uniformly within the
	// sample interval, as unsynchronised daemons do in practice.
	PhaseJitter bool
	// Retention bounds the store: records older than Retention are
	// trimmed after each aggregation flush. Zero keeps everything. Must
	// comfortably exceed the analytics ThroughputWindow and the longest
	// job runtime, since job usage is computed from these records.
	Retention des.Duration
}

// DefaultConfig returns 1 s sampling, 1 s aggregation, jittered phases.
func DefaultConfig() Config {
	return Config{
		SampleInterval:    des.Second,
		AggregateInterval: des.Second,
		PhaseJitter:       true,
		Retention:         2 * des.Hour,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SampleInterval <= 0 {
		return fmt.Errorf("ldms: SampleInterval must be positive, got %v", c.SampleInterval)
	}
	if c.AggregateInterval <= 0 {
		return fmt.Errorf("ldms: AggregateInterval must be positive, got %v", c.AggregateInterval)
	}
	if c.Retention < 0 {
		return fmt.Errorf("ldms: Retention must be non-negative, got %v", c.Retention)
	}
	return nil
}

type bufferedRecord struct {
	source string
	at     des.Time
	values [4]float64
}

// Daemon is the running monitoring pipeline.
type Daemon struct {
	eng       *des.Engine
	fs        *pfs.FileSystem
	container *sos.Container
	cfg       Config
	pending   []bufferedRecord
	stops     []func()
	samples   uint64
	flushes   uint64
}

// Start launches one sampler per node plus the aggregator, writing into
// store. The seed derives the sampler phase jitter.
func Start(eng *des.Engine, fs *pfs.FileSystem, store *sos.Store, nodes []string, cfg Config, seed uint64) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("ldms: no nodes to monitor")
	}
	container, err := store.CreateContainer(Schema())
	if err != nil {
		return nil, err
	}
	d := &Daemon{eng: eng, fs: fs, container: container, cfg: cfg}
	rng := des.NewRNG(seed, "ldms/jitter")
	for _, node := range nodes {
		node := node
		start := func() {
			stop := eng.Ticker(cfg.SampleInterval, "ldms/sample/"+node, func(now des.Time) {
				d.sample(node, now)
			})
			d.stops = append(d.stops, stop)
		}
		if cfg.PhaseJitter {
			phase := rng.Jitter(cfg.SampleInterval)
			eng.After(phase, "ldms/start/"+node, start)
		} else {
			start()
		}
	}
	stop := eng.Ticker(cfg.AggregateInterval, "ldms/aggregate", func(now des.Time) {
		d.flush()
		if cfg.Retention > 0 && now > des.Time(cfg.Retention) {
			d.container.Trim(now.Add(-cfg.Retention))
		}
	})
	d.stops = append(d.stops, stop)
	return d, nil
}

func (d *Daemon) sample(node string, now des.Time) {
	c := d.fs.NodeCounters(node)
	d.samples++
	d.pending = append(d.pending, bufferedRecord{
		source: node,
		at:     now,
		values: [4]float64{c.WriteBytes, c.ReadBytes, float64(c.WriteOps), float64(c.ReadOps)},
	})
}

func (d *Daemon) flush() {
	for i := range d.pending {
		r := &d.pending[i]
		if err := d.container.Append(r.source, r.at, r.values[:]); err != nil {
			// Monotonicity violations cannot happen with ticker-driven
			// samplers; any error here is a programming bug.
			panic(fmt.Sprintf("ldms: flush: %v", err))
		}
	}
	d.pending = d.pending[:0]
	d.flushes++
}

// Samples returns the number of samples taken (diagnostics).
func (d *Daemon) Samples() uint64 { return d.samples }

// Flushes returns the number of aggregator flushes (diagnostics).
func (d *Daemon) Flushes() uint64 { return d.flushes }

// Container returns the SOS container the daemon writes to.
func (d *Daemon) Container() *sos.Container { return d.container }

// Stop halts all samplers and the aggregator, flushing pending samples.
func (d *Daemon) Stop() {
	for _, s := range d.stops {
		s()
	}
	d.stops = nil
	d.flush()
}
