// The goroleak corpus: goroutines must show a join, cancel or ownership
// hand-off — a WaitGroup.Done, a close, a channel operation, a select or
// a range over a channel, directly or through a package-local callee.
package corpus

import (
	"os"
	"sync"
)

type pool struct {
	wg   sync.WaitGroup
	work chan int
	quit chan struct{}
	done chan struct{}
}

// Fire-and-forget loop: nothing can ever stop or observe it.
func (p *pool) leak() {
	go func() { // want `goroutine has no join, cancel or ownership hand-off`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// The four blessed shapes.
func (p *pool) joined() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		compute()
	}()
	p.wg.Wait()
}

func (p *pool) closes() {
	go func() {
		defer close(p.done)
		compute()
	}()
}

func (p *pool) selects() {
	go func() {
		for {
			select {
			case <-p.quit:
				return
			case v := <-p.work:
				_ = v
			}
		}
	}()
}

func (p *pool) drains() {
	go func() {
		for v := range p.work {
			_ = v
		}
	}()
}

func (p *pool) sends(errs chan error) {
	go func() {
		errs <- compute()
	}()
}

// Evidence through a package-local callee: loop selects on quit.
func (p *pool) viaHelper() {
	go p.loop()
	go func() {
		p.loop()
	}()
}

func (p *pool) loop() {
	for {
		select {
		case <-p.quit:
			return
		case v := <-p.work:
			_ = v
		}
	}
}

// A package-local callee with no evidence is still a leak.
func (p *pool) viaLeakyHelper() {
	go p.spin() // want `goroutine runs spin, which has no join, cancel or ownership hand-off`
}

func (p *pool) spin() {
	for {
		compute()
	}
}

// An imported callee's body is invisible: the launch site must signal.
func watchSignals(c chan os.Signal) {
	go os.Getpid() // want `goroutine runs os.Getpid outside this package: no visible join, cancel or ownership hand-off`
	_ = c
}

// Deliberate detachment documents its ownership story.
func detach() {
	//waschedlint:allow goroleak the process owns this daemon for its whole lifetime
	go os.Getpid()
}

// Ranging over a non-channel inside the body is not evidence.
func iterate(xs []int) {
	go func() { // want `goroutine has no join, cancel or ownership hand-off`
		for _, x := range xs {
			_ = x
		}
	}()
}

func compute() error { return nil }
