package des_test

import (
	"fmt"

	"wasched/internal/des"
)

// ExampleEngine runs a tiny deterministic simulation: two timers and a
// ticker on one timeline.
func ExampleEngine() {
	eng := des.NewEngine()
	eng.After(3*des.Second, "hello", func() { fmt.Println("hello at", eng.Now()) })
	stop := eng.Ticker(2*des.Second, "tick", func(now des.Time) { fmt.Println("tick at", now) })
	eng.Run(des.TimeFromSeconds(5))
	stop()
	// Output:
	// tick at t=2.000000s
	// hello at t=3.000000s
	// tick at t=4.000000s
}

// ExampleNewRNG shows named random streams: the same seed and name always
// reproduce the same draws, independent of other streams.
func ExampleNewRNG() {
	a := des.NewRNG(42, "pfs/noise")
	b := des.NewRNG(42, "pfs/noise")
	fmt.Println(a.Uint64() == b.Uint64())
	// Output:
	// true
}
