// Package experiments assembles the full prototype — file system model,
// cluster, monitoring, analytics, controller, policy — and regenerates
// every figure of the paper's evaluation (Figs. 3–6) plus the ablations
// called out in DESIGN.md.
//
// All experiments share one calibration (DESIGN.md §6): the pfs defaults
// model the paper's 56-volume SSD Lustre, and the cluster has 15 compute
// nodes, matching the paper's testbed.
package experiments

import (
	"fmt"

	"wasched/internal/analytics"
	"wasched/internal/bb"
	"wasched/internal/core"
	"wasched/internal/des"
	"wasched/internal/ldms"
	"wasched/internal/pfs"
	"wasched/internal/sched"
	"wasched/internal/schedcheck"
	"wasched/internal/slurm"
	"wasched/internal/stats"
	"wasched/internal/tbf"
	"wasched/internal/trace"
)

// Nodes is the paper's compute-node count (15 of Stria's 16 allocated
// nodes; the 16th ran the control plane, which needs no node here).
const Nodes = 15

// Limits used throughout the paper's evaluation.
const (
	Limit20 = 20 * pfs.GiB // GiB/s, the measured short-term bandwidth
	Limit15 = 15 * pfs.GiB // GiB/s, the estimated long-term bandwidth
)

// Options configure a system build.
type Options struct {
	Nodes        int
	Seed         uint64
	Policy       sched.Policy
	PFS          pfs.Config
	LDMS         ldms.Config
	Analytics    analytics.Config
	Slurm        slurm.Config
	SamplePeriod des.Duration // trace recorder period
	// BB, when CapacityBytes is set, attaches a burst-buffer tier to the
	// controller (stage-in before start, drain after end, both through
	// the shared PFS).
	BB bb.Config
	// TBF, when CapacityBytesPerSec is set, attaches the client-side
	// token-bucket bandwidth layer: every running job gets a bucket
	// filled at its fair share of the capacity, and the PFS enforces the
	// resulting per-node rate caps.
	TBF tbf.Config
}

// DefaultOptions returns the shared experimental setup: 15 nodes, the
// calibrated file system, 1 s monitoring, 30 s scheduling rounds with
// Slurm's default bf_max_job_test of 100, and 5 s trace sampling.
func DefaultOptions(policy sched.Policy, seed uint64) Options {
	scfg := slurm.DefaultConfig()
	scfg.Options.MaxJobTest = sched.SlurmDefaultTestLimit
	return Options{
		Nodes:        Nodes,
		Seed:         seed,
		Policy:       policy,
		PFS:          pfs.DefaultConfig(),
		LDMS:         ldms.DefaultConfig(),
		Analytics:    analytics.DefaultConfig(),
		Slurm:        scfg,
		SamplePeriod: 5 * des.Second,
	}
}

// System is a fully wired prototype instance (see core.System).
type System = core.System

// Build wires a system from options via the core library.
func Build(opts Options) (*System, error) {
	if opts.Policy == nil {
		return nil, fmt.Errorf("experiments: nil policy")
	}
	cfg := core.Config{
		Nodes:       opts.Nodes,
		Seed:        opts.Seed,
		Scheduler:   core.SchedulerConfig{Custom: opts.Policy},
		FS:          opts.PFS,
		Monitor:     opts.LDMS,
		Analytics:   opts.Analytics,
		Control:     opts.Slurm,
		TracePeriod: opts.SamplePeriod,
		BB:          opts.BB,
		TBF:         opts.TBF,
	}
	return core.NewSystem(cfg)
}

// Pretrain reproduces the paper's pre-training stage: each distinct job
// class of the workload runs once in isolation on a scratch system, and
// the measured rate and runtime seed the main system's estimator.
func Pretrain(sys *System, specs []slurm.JobSpec) error {
	return sys.PretrainIsolated(specs)
}

// RunResult summarises one scheduling run.
type RunResult struct {
	Label      string
	Policy     string
	Makespan   float64 // seconds
	MedianWait float64 // seconds
	Jobs       int
	Timeouts   int
	Recorder   *trace.Recorder
	// MeanBusyNodes is the time-averaged allocated node count over the
	// makespan — the node-allocation panel of Figs. 3/5 in one number.
	MeanBusyNodes float64
	// MeanThroughput is the time-averaged Lustre throughput in GiB/s.
	MeanThroughput float64
	// IdleNodeSeconds integrates (N - busy) over the makespan.
	IdleNodeSeconds float64
	// Sched holds the standard scheduling quality metrics (mean/P95 wait,
	// mean and bounded slowdown) over the finished jobs.
	Sched trace.Metrics
	// Invariants is the schedule validation of the run (internal/schedcheck):
	// every experiment doubles as an invariant check. RunWorkload fails on
	// violations; direct summarize callers can inspect it.
	Invariants schedcheck.Result
}

// MeanClassRuntime returns the mean runtime in seconds of finished jobs
// whose name matches class (0 when none finished). It quantifies
// congestion exposure: a write job's runtime inflates with file-system
// contention.
func (r *RunResult) MeanClassRuntime(class string) float64 {
	sum, n := 0.0, 0
	for _, j := range r.Recorder.Jobs() {
		if j.Name == class {
			sum += j.Runtime()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanClassWait returns the mean queue wait in seconds of finished jobs
// whose name matches class (0 when none finished) — the starvation metric
// of the BackfillMax ablation.
func (r *RunResult) MeanClassWait(class string) float64 {
	sum, n := 0.0, 0
	for _, j := range r.Recorder.Jobs() {
		if j.Name == class {
			sum += j.Wait()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RunWorkload executes a full experiment: optionally pre-train, submit the
// workload as one batch at t=0, and run the simulation until the queue
// drains. maxSim caps the simulated time as a safety net (0 = 1000 h).
func RunWorkload(opts Options, specs []slurm.JobSpec, pretrain bool, label string) (*RunResult, error) {
	sys, err := Build(opts)
	if err != nil {
		return nil, err
	}
	if pretrain {
		if err := Pretrain(sys, specs); err != nil {
			return nil, err
		}
	}
	if err := sys.SubmitAll(specs); err != nil {
		return nil, err
	}
	sys.Start()
	if err := sys.RunToCompletion(1000 * des.Hour); err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", label, err)
	}
	res := summarize(sys, label)
	if err := res.Invariants.Err(); err != nil {
		return res, fmt.Errorf("experiments: %s: %w", label, err)
	}
	return res, nil
}

// policyLimit extracts a policy's hard throughput limit R_limit for the
// validator's soft throughput check (0 = policy has none).
func policyLimit(p sched.Policy) float64 {
	switch q := p.(type) {
	case sched.IOAwarePolicy:
		return q.ThroughputLimit
	case sched.AdaptivePolicy:
		return q.ThroughputLimit
	case sched.TetrisPolicy:
		return policyLimit(q.Inner)
	case sched.PlanPolicy:
		return q.ThroughputLimit
	case sched.BBAwarePolicy:
		return policyLimit(q.Inner)
	case sched.TBFAwarePolicy:
		// The token layer throttles at the clients, not at admission: the
		// wrapper adds no R_limit of its own, only the inner policy's.
		return policyLimit(q.Inner)
	default:
		return 0
	}
}

func summarize(sys *System, label string) *RunResult {
	makespan := sys.Controller.Makespan().Seconds()
	waits := make([]float64, 0, sys.Controller.DoneCount())
	timeouts := 0
	for _, j := range sys.Controller.DoneJobs() {
		waits = append(waits, j.WaitTime().Seconds())
		if j.State == slurm.StateTimeout {
			timeouts++
		}
	}
	meanBusy := sys.Recorder.BusyNodes.MeanOver(0, makespan)
	res := &RunResult{
		Label:          label,
		Policy:         sys.Controller.Policy().Name(),
		Makespan:       makespan,
		MedianWait:     stats.Median(waits),
		Jobs:           sys.Controller.DoneCount(),
		Timeouts:       timeouts,
		Recorder:       sys.Recorder,
		MeanBusyNodes:  meanBusy,
		MeanThroughput: sys.Recorder.Throughput.MeanOver(0, makespan),
	}
	res.IdleNodeSeconds = (float64(sys.Cluster.Size()) - meanBusy) * makespan
	res.Sched = trace.ComputeMetrics(sys.Recorder.Jobs())
	// Every run is invariant-checked, order check included: the
	// FIFO-within-class sweep is requeue-aware (per-attempt trace records
	// carry their own eligible times), so preemption runs are validated
	// rather than skipped.
	vopts := schedcheck.ValidateOptions{
		Nodes:           sys.Cluster.Size(),
		ThroughputLimit: policyLimit(sys.Controller.Policy()),
	}
	if sys.BB != nil {
		vopts.BBCapacity = sys.BB.Capacity()
	}
	if sys.TBF != nil {
		vopts.TBF = true
	}
	res.Invariants = schedcheck.ValidateRun(sys.Recorder, vopts)
	if sys.BB != nil {
		// The tier's ledger is the ground truth for stage/drain timing; the
		// trace-level sweep sees only what the recorder attributed to jobs.
		res.Invariants.Merge(schedcheck.ValidateBB(sys.BB.Ledger(), sys.BB.Capacity()))
	}
	if sys.TBF != nil {
		// Same split as BB: the limiter's ledger is the token ground truth,
		// the trace sweep checks what the recorder attributed per job.
		res.Invariants.Merge(schedcheck.ValidateTBF(sys.TBF.Ledger()))
	}
	return res
}
