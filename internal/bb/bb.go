// Package bb models a shared burst-buffer appliance layered on the DES
// engine, after Kopanski/Rzadca's shared burst-buffer architecture: a
// finite pool of fast intermediate storage that jobs reserve for their
// whole lifetime. A job's data is staged in from the PFS before its
// program starts, and its dirty data is drained (staged out) back to the
// PFS after it ends — both as ordinary pfs streams on dedicated appliance
// node names, so stage and drain traffic contends for the same bandwidth
// arbitration as the jobs' own I/O and shows up in the LDMS-style node
// samples the recorders already collect.
//
// Capacity accounting is strict by construction: Admit reserves the whole
// request against the pool and the reservation is held until the drain
// stream completes, so occupancy can never exceed capacity. The scheduler
// side (sched.PlanPolicy, sched.BBAwarePolicy) plans against the same
// pool; policies that ignore burst buffers still run correctly because
// the controller defers starts whose demand does not fit.
package bb

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"wasched/internal/cluster"
	"wasched/internal/des"
	"wasched/internal/pfs"
)

// Config describes the burst-buffer appliance.
type Config struct {
	// CapacityBytes is the shared pool size in bytes; zero disables the
	// tier entirely (core.NewSystem then builds no Tier).
	CapacityBytes float64
	// PerNodeBytes optionally caps a job's demand per allocated node
	// (demand/nodes must not exceed it); zero means no per-node cap.
	PerNodeBytes float64
	// StageNodes and DrainNodes are how many appliance node names carry
	// stage-in (PFS reads) respectively drain (PFS writes) streams;
	// they default to 2 each.
	StageNodes int
	DrainNodes int
}

func (c Config) withDefaults() Config {
	if c.StageNodes <= 0 {
		c.StageNodes = 2
	}
	if c.DrainNodes <= 0 {
		c.DrainNodes = 2
	}
	return c
}

// ErrCapacity is returned by Admit when the request does not fit the free
// pool right now; the caller retries on a later scheduling round.
var ErrCapacity = errors.New("bb: insufficient free burst-buffer capacity")

// clampNonNeg guards occupancy/rate arithmetic against NaN and negative
// inputs (floatguard contract for this package).
func clampNonNeg(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// LedgerEntry records one finished burst-buffer attempt: reservation,
// stage-in, compute and drain milestones. Entries are the validator's
// ground truth for the BB invariants.
type LedgerEntry struct {
	JobID        string
	Bytes        float64
	Admitted     des.Time
	StageInDone  des.Time // meaningful when Staged
	ComputeStart des.Time // meaningful when Staged
	Ended        des.Time
	DrainEnd     des.Time
	Drained      float64
	// Staged reports that stage-in finished and the program ran; a job
	// killed mid-stage-in has no dirty data and drains nothing.
	Staged bool
	// Requeued reports the attempt ended in preemption/requeue rather
	// than terminally.
	Requeued bool
}

// entry is one live attempt, from Admit until its drain completes.
type entry struct {
	LedgerEntry
	stage *pfs.Stream
	ended bool
}

// Tier is the burst-buffer appliance model.
type Tier struct {
	eng *des.Engine
	fs  *pfs.FileSystem
	cfg Config

	occupied     float64
	totalDrained float64

	stageNames []string
	drainNames []string
	nextStage  int
	nextDrain  int
	nextVol    int

	active   map[string]*entry // admitted, not yet ended
	draining []*entry          // ended, drain in flight
	ledger   []LedgerEntry     // closed attempts

	rateScratch map[string]float64
}

// New builds a Tier. CapacityBytes must be positive — a zero-capacity
// appliance is "no burst buffer", which callers express by not building
// the tier at all.
func New(eng *des.Engine, fs *pfs.FileSystem, cfg Config) (*Tier, error) {
	if eng == nil || fs == nil {
		return nil, fmt.Errorf("bb: engine and file system are required")
	}
	if cfg.CapacityBytes <= 0 || math.IsNaN(cfg.CapacityBytes) {
		return nil, fmt.Errorf("bb: CapacityBytes must be positive, got %g", cfg.CapacityBytes)
	}
	if cfg.PerNodeBytes < 0 || math.IsNaN(cfg.PerNodeBytes) {
		return nil, fmt.Errorf("bb: PerNodeBytes must be non-negative, got %g", cfg.PerNodeBytes)
	}
	cfg = cfg.withDefaults()
	t := &Tier{
		eng:         eng,
		fs:          fs,
		cfg:         cfg,
		active:      map[string]*entry{},
		rateScratch: map[string]float64{},
	}
	for i := 0; i < cfg.StageNodes; i++ {
		t.stageNames = append(t.stageNames, fmt.Sprintf("bb-in%d", i))
	}
	for i := 0; i < cfg.DrainNodes; i++ {
		t.drainNames = append(t.drainNames, fmt.Sprintf("bb-out%d", i))
	}
	return t, nil
}

// Capacity returns the pool size in bytes.
func (t *Tier) Capacity() float64 { return t.cfg.CapacityBytes }

// Occupied returns the bytes currently reserved (admitted jobs plus
// attempts still draining).
func (t *Tier) Occupied() float64 { return t.occupied }

// TotalDrained returns the cumulative bytes drained back to the PFS.
func (t *Tier) TotalDrained() float64 { return t.totalDrained }

// ApplianceNodes returns the node names carrying stage/drain traffic, in
// a fixed order, so recorders can attribute their sampled rates.
func (t *Tier) ApplianceNodes() []string {
	names := make([]string, 0, len(t.stageNames)+len(t.drainNames))
	names = append(names, t.stageNames...)
	names = append(names, t.drainNames...)
	return names
}

// Rates returns the current aggregate stage-in and drain throughput in
// bytes/s, from the file system's per-node stream rates.
func (t *Tier) Rates() (stage, drain float64) {
	t.rateScratch = t.fs.CurrentNodeRates(t.rateScratch)
	for _, n := range t.stageNames {
		stage += clampNonNeg(t.rateScratch[n])
	}
	for _, n := range t.drainNames {
		drain += clampNonNeg(t.rateScratch[n])
	}
	return stage, drain
}

// Feasible reports whether a request could ever be admitted: demand must
// be positive, fit the whole pool, and respect the per-node cap. The
// controller rejects infeasible requests at submission so they cannot
// pend forever.
func (t *Tier) Feasible(bytes float64, nodes int) error {
	if bytes <= 0 || math.IsNaN(bytes) {
		return fmt.Errorf("bb: demand must be positive, got %g", bytes)
	}
	if bytes > t.cfg.CapacityBytes {
		return fmt.Errorf("bb: demand %g exceeds pool capacity %g", bytes, t.cfg.CapacityBytes)
	}
	if t.cfg.PerNodeBytes > 0 && nodes > 0 && bytes > t.cfg.PerNodeBytes*float64(nodes) {
		return fmt.Errorf("bb: demand %g exceeds per-node cap %g × %d nodes", bytes, t.cfg.PerNodeBytes, nodes)
	}
	return nil
}

// Admit reserves bytes for jobID, or reports ErrCapacity when the free
// pool is too small right now (the caller retries next round). The
// reservation is held until JobEnded's drain completes.
func (t *Tier) Admit(jobID string, bytes float64, nodes int) error {
	if err := t.Feasible(bytes, nodes); err != nil {
		return err
	}
	if _, ok := t.active[jobID]; ok {
		panic(fmt.Sprintf("bb: job %s admitted twice", jobID))
	}
	if t.occupied+bytes > t.cfg.CapacityBytes {
		return fmt.Errorf("%w: need %g, free %g", ErrCapacity, bytes, t.cfg.CapacityBytes-t.occupied)
	}
	t.occupied += bytes
	t.active[jobID] = &entry{LedgerEntry: LedgerEntry{
		JobID:    jobID,
		Bytes:    bytes,
		Admitted: t.eng.Now(),
	}}
	return nil
}

// Wrap returns inner preceded by the job's stage-in: the program starts
// only after the staged bytes have been read from the PFS. The job must
// have been admitted.
func (t *Tier) Wrap(jobID string, inner cluster.Program) cluster.Program {
	if _, ok := t.active[jobID]; !ok {
		panic(fmt.Sprintf("bb: job %s not admitted", jobID))
	}
	return &stagedProgram{t: t, jobID: jobID, inner: inner}
}

// JobEnded starts the attempt's stage-out: dirty data (the full
// reservation once compute has started; nothing if the job died during
// stage-in) drains to the PFS as a write stream, and the capacity
// reservation is released when the drain completes.
func (t *Tier) JobEnded(jobID string, requeued bool) {
	e, ok := t.active[jobID]
	if !ok {
		panic(fmt.Sprintf("bb: JobEnded for unknown job %s", jobID))
	}
	delete(t.active, jobID)
	e.ended = true
	e.Ended = t.eng.Now()
	e.Requeued = requeued
	if e.stage != nil {
		t.fs.CancelStream(e.stage)
		e.stage = nil
	}
	if !e.Staged {
		// Died before stage-in finished: nothing dirty, release now.
		t.release(e, 0)
		return
	}
	t.draining = append(t.draining, e)
	dirty := e.Bytes
	t.fs.StartStream(t.pickDrainNode(), pfs.Write, t.pickVolume(), dirty, func() {
		t.unlink(e)
		t.release(e, dirty)
	})
}

// release closes an attempt: frees its reservation and appends the
// ledger record.
func (t *Tier) release(e *entry, drained float64) {
	e.DrainEnd = t.eng.Now()
	e.Drained = drained
	t.totalDrained += drained
	t.occupied -= e.Bytes
	if t.occupied < 0 {
		t.occupied = 0
	}
	t.ledger = append(t.ledger, e.LedgerEntry)
}

// unlink removes e from the draining list.
func (t *Tier) unlink(e *entry) {
	for i, d := range t.draining {
		if d == e {
			t.draining = append(t.draining[:i], t.draining[i+1:]...)
			return
		}
	}
}

// Ledger returns the closed attempts sorted by admission time then job ID
// (deterministic output for reports and the validator).
func (t *Tier) Ledger() []LedgerEntry {
	out := make([]LedgerEntry, len(t.ledger))
	copy(out, t.ledger)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Admitted != out[b].Admitted {
			return out[a].Admitted < out[b].Admitted
		}
		return out[a].JobID < out[b].JobID
	})
	return out
}

// JobInfo reports the stage milestones of jobID's most recent attempt in
// seconds (bytes, stage-in end, compute start); ok is false when the job
// never held a reservation. Recorders use it to enrich job traces.
func (t *Tier) JobInfo(jobID string) (bytes, stageInDone, computeStart float64, ok bool) {
	if e, live := t.active[jobID]; live {
		return t.info(&e.LedgerEntry)
	}
	for i := len(t.draining) - 1; i >= 0; i-- {
		if t.draining[i].JobID == jobID {
			return t.info(&t.draining[i].LedgerEntry)
		}
	}
	for i := len(t.ledger) - 1; i >= 0; i-- {
		if t.ledger[i].JobID == jobID {
			return t.info(&t.ledger[i])
		}
	}
	return 0, 0, 0, false
}

func (t *Tier) info(e *LedgerEntry) (bytes, stageInDone, computeStart float64, ok bool) {
	if !e.Staged {
		return e.Bytes, 0, 0, true
	}
	return e.Bytes, e.StageInDone.Seconds(), e.ComputeStart.Seconds(), true
}

// pickVolume round-robins drain/stage traffic over the PFS volumes.
func (t *Tier) pickVolume() int {
	v := t.nextVol % t.fs.Volumes()
	t.nextVol++
	return v
}

func (t *Tier) pickStageNode() string {
	n := t.stageNames[t.nextStage%len(t.stageNames)]
	t.nextStage++
	return n
}

func (t *Tier) pickDrainNode() string {
	n := t.drainNames[t.nextDrain%len(t.drainNames)]
	t.nextDrain++
	return n
}

// stagedProgram runs the stage-in read before starting the wrapped
// program. Stopping it mid-stage cancels the stream; the inner program is
// stopped only if it ever started.
type stagedProgram struct {
	t     *Tier
	jobID string
	inner cluster.Program
}

// Start implements cluster.Program.
func (p *stagedProgram) Start(ctx *cluster.Context, nodes []string, done func()) (stop func()) {
	e, ok := p.t.active[p.jobID]
	if !ok {
		panic(fmt.Sprintf("bb: staged program for %s started without admission", p.jobID))
	}
	var innerStop func()
	stopped := false
	e.stage = p.t.fs.StartStream(p.t.pickStageNode(), pfs.Read, p.t.pickVolume(), e.Bytes, func() {
		e.stage = nil
		if stopped {
			return
		}
		now := p.t.eng.Now()
		e.Staged = true
		e.StageInDone = now
		e.ComputeStart = now
		innerStop = p.inner.Start(ctx, nodes, done)
	})
	return func() {
		stopped = true
		if innerStop != nil {
			innerStop()
			return
		}
		if e.stage != nil {
			p.t.fs.CancelStream(e.stage)
			e.stage = nil
		}
	}
}
