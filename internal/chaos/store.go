package chaos

import (
	"fmt"
	"os"
	"sync"

	"wasched/internal/farm"
	"wasched/internal/gridfarm"
)

// StoreStats counts the faults a Store injected.
type StoreStats struct {
	Records     int  // admissions attempted through the wrapper
	FailedWrite int  // admissions failed by the recordfail knob
	Killed      bool // the kill point fired
}

// Store wraps a farm.Store (or any gridfarm.Store) with seeded admission
// faults: probabilistic record failures — the coordinator must turn each
// into an unacknowledged 500 — and an optional kill point that tears the
// journal tail and declares the process dead, the way a SIGKILL between
// append and acknowledgement would. After the kill fires, every operation
// errors: a dead process does not keep journaling.
type Store struct {
	inner gridfarm.Store
	plan  Plan
	// OnKill, when non-nil, fires exactly once when the kill point trips —
	// after the torn tail is written, before the admission errors. The
	// Drill uses it to hard-stop the coordinator's server; the CLI exits
	// the process.
	OnKill func()

	mu     sync.Mutex
	rng    *rng
	stats  StoreStats
	killed bool
	once   sync.Once
}

// NewStore wraps inner under plan, seeded by (seed, "store").
func NewStore(inner gridfarm.Store, seed uint64, plan Plan) *Store {
	plan.normalize()
	return &Store{inner: inner, plan: plan, rng: streamRNG(seed, "store")}
}

// Stats snapshots the injected-fault counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Record passes the admission through unless the plan fails or kills it.
// The kill point fires on the Nth attempted admission: it appends a torn
// partial line to the journal (bypassing the inner store, exactly as a
// killed writer's buffered tail lands), invokes OnKill, and errors — the
// admission was neither journaled nor acknowledged.
func (s *Store) Record(out *farm.Outcome) error {
	s.mu.Lock()
	if s.killed {
		s.mu.Unlock()
		return fmt.Errorf("chaos: store is dead (kill point fired)")
	}
	s.stats.Records++
	n := s.stats.Records
	kill := s.plan.KillAfter > 0 && n == s.plan.KillAfter
	fail := !kill && s.rng.float64() < s.plan.RecordFail
	if fail {
		s.stats.FailedWrite++
	}
	if kill {
		s.killed = true
		s.stats.Killed = true
	}
	s.mu.Unlock()

	if kill {
		if err := s.tearTail(); err != nil {
			return fmt.Errorf("chaos: kill point: %w", err)
		}
		s.once.Do(func() {
			if s.OnKill != nil {
				s.OnKill()
			}
		})
		return fmt.Errorf("chaos: coordinator killed mid-admission of %s", out.Cell)
	}
	if fail {
		return fmt.Errorf("chaos: injected record failure for %s", out.Cell)
	}
	return s.inner.Record(out)
}

// tearTail appends a partial journal line with no newline — the torn tail
// repairJournalTail must truncate on the next open.
func (s *Store) tearTail() error {
	frag := []byte(`{"event":"done","key":"chaos-torn-tail-`)
	for len(frag) < s.plan.TearBytes {
		frag = append(frag, 'x')
	}
	frag = frag[:s.plan.TearBytes]
	f, err := os.OpenFile(farm.JournalPath(s.inner.Dir(), s.inner.Name()), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frag); err != nil {
		//waschedlint:allow checkederr the write error is already being returned; close is best-effort cleanup
		f.Close()
		return err
	}
	return f.Close()
}

// The remaining gridfarm.Store methods delegate, refusing once killed.

func (s *Store) dead() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return fmt.Errorf("chaos: store is dead (kill point fired)")
	}
	return nil
}

func (s *Store) Lookup(c farm.Cell) (*farm.Outcome, bool, error) {
	if err := s.dead(); err != nil {
		return nil, false, err
	}
	return s.inner.Lookup(c)
}

func (s *Store) Begin(cells, cached int) error {
	if err := s.dead(); err != nil {
		return err
	}
	return s.inner.Begin(cells, cached)
}

func (s *Store) Event(event string, c farm.Cell, worker string) error {
	if err := s.dead(); err != nil {
		return err
	}
	return s.inner.Event(event, c, worker)
}

func (s *Store) Dir() string         { return s.inner.Dir() }
func (s *Store) Name() string        { return s.inner.Name() }
func (s *Store) TailRepaired() int64 { return s.inner.TailRepaired() }

var _ gridfarm.Store = (*Store)(nil)
