package des

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are single-shot; a fired or
// cancelled event is inert. Events are ordered by time, then by scheduling
// sequence number, which makes simultaneous events fire in the order they
// were scheduled.
type Event struct {
	at    Time
	seq   uint64
	index int // position in the heap, -1 when not queued
	fn    func()
	name  string
}

// At returns the time the event is (or was) scheduled to fire.
func (e *Event) At() Time { return e.at }

// Name returns the diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulation executive. It is not
// safe for concurrent use: a simulation is a single logical timeline, and
// all model code runs inside event callbacks on one goroutine.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	fired  uint64
	inStep bool
}

// NewEngine returns an engine positioned at time zero with an empty queue.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// At schedules fn to run at absolute time at. Scheduling in the past
// (before Now) panics: it would mean the model produced a causality
// violation, which is always a bug.
func (e *Engine) At(at Time, name string, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("des: event %q scheduled at %v before now %v", name, at, e.now))
	}
	if fn == nil {
		panic("des: nil event callback")
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn, name: name}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("des: event %q scheduled %v in the past", name, d))
	}
	return e.At(e.now.Add(d), name, fn)
}

// Cancel removes a pending event from the queue. Cancelling a nil, fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
	return true
}

// Reschedule moves a pending event to a new time, preserving its callback.
// If the event already fired or was cancelled it returns false.
func (e *Engine) Reschedule(ev *Event, at Time) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	if at < e.now {
		panic(fmt.Sprintf("des: event %q rescheduled to %v before now %v", ev.name, at, e.now))
	}
	ev.at = at
	e.seq++
	ev.seq = e.seq
	heap.Fix(&e.queue, ev.index)
	return true
}

// Step executes the earliest pending event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.at < e.now {
		panic("des: corrupt event queue (time went backwards)")
	}
	e.now = ev.at
	fn := ev.fn
	ev.fn = nil
	e.fired++
	fn()
	return true
}

// Run executes events until the queue drains or the next event would fire
// after the deadline. The clock is left at the later of its current value
// and the deadline when the deadline is the binding constraint; otherwise
// at the time of the last executed event.
func (e *Engine) Run(until Time) {
	for len(e.queue) > 0 && e.queue[0].at <= until {
		e.Step()
	}
	if e.now < until && len(e.queue) == 0 {
		// Nothing left to do; park the clock at the deadline so that
		// callers observe a consistent "simulated through" time.
		e.now = until
	} else if e.now < until {
		e.now = until
	}
}

// RunUntilIdle executes events until the queue is empty. The limit guards
// against runaway self-rescheduling models: exceeding it panics with a
// diagnostic rather than hanging the test suite. Pass 0 for no limit.
func (e *Engine) RunUntilIdle(limit uint64) {
	start := e.fired
	for e.Step() {
		if limit != 0 && e.fired-start > limit {
			panic(fmt.Sprintf("des: RunUntilIdle exceeded %d events (next %q at %v)",
				limit, e.peekName(), e.now))
		}
	}
}

func (e *Engine) peekName() string {
	if len(e.queue) == 0 {
		return "<none>"
	}
	return e.queue[0].name
}

// Ticker invokes fn every period, starting at the current time plus period,
// until the returned stop function is called. The callback receives the
// firing time. Tickers are a convenience for samplers and scheduling rounds.
func (e *Engine) Ticker(period Duration, name string, fn func(Time)) (stop func()) {
	if period <= 0 {
		panic("des: ticker period must be positive")
	}
	var ev *Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn(e.now)
		if !stopped {
			ev = e.After(period, name, tick)
		}
	}
	ev = e.After(period, name, tick)
	return func() {
		stopped = true
		e.Cancel(ev)
	}
}
