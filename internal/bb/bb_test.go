package bb

import (
	"errors"
	"testing"

	"wasched/internal/cluster"
	"wasched/internal/des"
	"wasched/internal/pfs"
)

func newTestTier(t *testing.T, capacity float64) (*des.Engine, *pfs.FileSystem, *Tier) {
	t.Helper()
	eng := des.NewEngine()
	cfg := pfs.DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.BurstBoost = 1
	cfg.MDSLatency = 0
	cfg.MDSOpsPerSec = 1e9
	fs, err := pfs.New(eng, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	tier, err := New(eng, fs, Config{CapacityBytes: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return eng, fs, tier
}

func TestAdmitCapacityAccounting(t *testing.T) {
	_, _, tier := newTestTier(t, 100)
	if err := tier.Admit("j1", 60, 2); err != nil {
		t.Fatal(err)
	}
	if tier.Occupied() != 60 {
		t.Fatalf("occupied = %g", tier.Occupied())
	}
	if err := tier.Admit("j2", 50, 2); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-capacity admit: %v", err)
	}
	if err := tier.Admit("j3", 40, 1); err != nil {
		t.Fatal(err)
	}
	if tier.Occupied() != 100 {
		t.Fatalf("occupied = %g", tier.Occupied())
	}
}

func TestFeasibleRejectsImpossibleDemand(t *testing.T) {
	_, _, tier := newTestTier(t, 100)
	if err := tier.Feasible(150, 4); err == nil {
		t.Fatal("demand above pool capacity must be infeasible")
	}
	if err := tier.Feasible(0, 4); err == nil {
		t.Fatal("non-positive demand must be infeasible")
	}
	eng := des.NewEngine()
	fs, err := pfs.New(eng, pfs.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	perNode, err := New(eng, fs, Config{CapacityBytes: 100, PerNodeBytes: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := perNode.Feasible(50, 2); err == nil {
		t.Fatal("per-node cap must reject 25 bytes/node > 10")
	}
	if err := perNode.Feasible(50, 5); err != nil {
		t.Fatalf("10 bytes/node must be feasible: %v", err)
	}
}

func TestStageInComputeDrainLifecycle(t *testing.T) {
	eng, fs, tier := newTestTier(t, 100*pfs.GiB)
	if err := tier.Admit("j1", 60*pfs.GiB, 2); err != nil {
		t.Fatal(err)
	}
	prog := tier.Wrap("j1", cluster.SleepProgram{D: 10 * des.Second})
	ctx := &cluster.Context{Eng: eng, FS: fs, RNG: des.NewRNG(1, "job/j1")}
	done := false
	prog.Start(ctx, []string{"node1"}, func() {
		done = true
		tier.JobEnded("j1", false)
	})
	eng.Run(des.TimeFromSeconds(1e6))
	if !done {
		t.Fatal("program never completed")
	}
	if tier.Occupied() != 0 {
		t.Fatalf("occupied after drain = %g", tier.Occupied())
	}
	led := tier.Ledger()
	if len(led) != 1 {
		t.Fatalf("ledger = %+v", led)
	}
	e := led[0]
	if !e.Staged || e.Requeued {
		t.Fatalf("entry flags: %+v", e)
	}
	if !(e.Admitted <= e.StageInDone && e.StageInDone == e.ComputeStart && e.ComputeStart < e.Ended && e.Ended <= e.DrainEnd) {
		t.Fatalf("milestone order: %+v", e)
	}
	// Stage-in moves real bytes through the PFS, so compute starts strictly
	// after admission and the drain strictly after the program's end.
	if e.StageInDone == e.Admitted || e.DrainEnd == e.Ended {
		t.Fatalf("stage/drain must take simulated time: %+v", e)
	}
	if e.Drained != 60*pfs.GiB || tier.TotalDrained() != 60*pfs.GiB {
		t.Fatalf("drained = %g, total = %g", e.Drained, tier.TotalDrained())
	}
	// Program end = stage-in end + 10 s sleep.
	if got := e.Ended.Sub(e.ComputeStart); got != 10*des.Second {
		t.Fatalf("compute duration = %v", got)
	}
}

func TestKillDuringStageInDrainsNothing(t *testing.T) {
	eng, fs, tier := newTestTier(t, 100*pfs.GiB)
	if err := tier.Admit("j1", 60*pfs.GiB, 2); err != nil {
		t.Fatal(err)
	}
	prog := tier.Wrap("j1", cluster.SleepProgram{D: 10 * des.Second})
	ctx := &cluster.Context{Eng: eng, FS: fs, RNG: des.NewRNG(1, "job/j1")}
	stop := prog.Start(ctx, []string{"node1"}, func() { t.Fatal("done must not fire after stop") })
	stop()
	tier.JobEnded("j1", true)
	eng.Run(des.TimeFromSeconds(1e6))
	if tier.Occupied() != 0 {
		t.Fatalf("occupied = %g", tier.Occupied())
	}
	led := tier.Ledger()
	if len(led) != 1 || led[0].Staged || led[0].Drained != 0 || !led[0].Requeued {
		t.Fatalf("ledger = %+v", led)
	}
	if tier.TotalDrained() != 0 {
		t.Fatalf("total drained = %g", tier.TotalDrained())
	}
}

func TestApplianceNodesAndRates(t *testing.T) {
	eng, fs, tier := newTestTier(t, 100*pfs.GiB)
	names := tier.ApplianceNodes()
	if len(names) != 4 || names[0] != "bb-in0" || names[3] != "bb-out1" {
		t.Fatalf("appliance nodes: %v", names)
	}
	if err := tier.Admit("j1", 60*pfs.GiB, 2); err != nil {
		t.Fatal(err)
	}
	prog := tier.Wrap("j1", cluster.SleepProgram{D: 10 * des.Second})
	ctx := &cluster.Context{Eng: eng, FS: fs, RNG: des.NewRNG(1, "job/j1")}
	prog.Start(ctx, []string{"node1"}, func() { tier.JobEnded("j1", false) })
	eng.Run(des.TimeFromSeconds(1))
	stage, drain := tier.Rates()
	if stage <= 0 || drain != 0 {
		t.Fatalf("mid-stage rates: stage=%g drain=%g", stage, drain)
	}
}
