package schedcheck

import (
	"strings"
	"testing"

	"wasched/internal/trace"
)

func jt(id string, nodes int, submit, start, end float64) trace.JobTrace {
	return trace.JobTrace{ID: id, Fingerprint: id, Nodes: nodes,
		Submit: submit, Start: start, End: end, Limit: end - start + 100}
}

func wantViolation(t *testing.T, res Result, invariant string) {
	t.Helper()
	for _, v := range res.Violations {
		if v.Invariant == invariant {
			return
		}
	}
	t.Fatalf("expected a %q violation, got %v", invariant, res.Violations)
}

func wantClean(t *testing.T, res Result) {
	t.Helper()
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateJobsClean(t *testing.T) {
	jobs := []trace.JobTrace{
		jt("a", 4, 0, 0, 100),
		jt("b", 4, 0, 0, 50),
		jt("c", 8, 10, 100, 200), // starts the instant a's and b's nodes free up
	}
	res := ValidateJobs(jobs, ValidateOptions{Nodes: 8})
	wantClean(t, res)
	if res.JobsChecked != 3 {
		t.Fatalf("JobsChecked = %d, want 3", res.JobsChecked)
	}
}

func TestValidateJobsStartBeforeSubmit(t *testing.T) {
	res := ValidateJobs([]trace.JobTrace{jt("a", 1, 100, 50, 200)}, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "submit-before-start")
}

func TestValidateJobsEndBeforeStart(t *testing.T) {
	j := jt("a", 1, 0, 100, 40)
	j.Limit = 500
	res := ValidateJobs([]trace.JobTrace{j}, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "start-before-end")
}

func TestValidateJobsLimitOverrun(t *testing.T) {
	j := jt("a", 1, 0, 0, 1000)
	j.Limit = 600
	res := ValidateJobs([]trace.JobTrace{j}, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "limit-respected")
}

func TestValidateJobsOversubscription(t *testing.T) {
	jobs := []trace.JobTrace{
		jt("a", 5, 0, 0, 100),
		jt("b", 4, 0, 50, 150), // overlaps a: 9 nodes on an 8-node cluster
	}
	res := ValidateJobs(jobs, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "node-capacity")
	// The same schedule on a big enough cluster is fine.
	wantClean(t, ValidateJobs(jobs, ValidateOptions{Nodes: 9}))
}

func TestValidateJobsBackToBackIsNotOverlap(t *testing.T) {
	// End at t and start at t on the same nodes must not count as overlap.
	jobs := []trace.JobTrace{
		jt("a", 8, 0, 0, 100),
		jt("b", 8, 0, 100, 200),
	}
	wantClean(t, ValidateJobs(jobs, ValidateOptions{Nodes: 8}))
}

func TestValidateJobsClassOrder(t *testing.T) {
	a := jt("a", 2, 0, 90, 120)
	b := jt("b", 2, 10, 30, 60) // identical class, submitted later, started earlier
	b.Fingerprint = a.Fingerprint
	b.Limit = a.Limit
	res := ValidateJobs([]trace.JobTrace{a, b}, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "fifo-class-order")
	// Different classes may reorder freely (that's what backfill is for).
	b.Nodes = 1
	wantClean(t, ValidateJobs([]trace.JobTrace{a, b}, ValidateOptions{Nodes: 8}))
	// And the check can be disabled for preemptive schedulers.
	b.Nodes = 2
	res = ValidateJobs([]trace.JobTrace{a, b}, ValidateOptions{Nodes: 8, SkipOrderCheck: true})
	wantClean(t, res)
}

func TestValidateJobsSkipsNeverStarted(t *testing.T) {
	cancelled := trace.JobTrace{ID: "c", Fingerprint: "c", Nodes: 4, Submit: 10}
	res := ValidateJobs([]trace.JobTrace{cancelled}, ValidateOptions{Nodes: 8})
	wantClean(t, res)
	if res.JobsChecked != 0 {
		t.Fatalf("JobsChecked = %d for a never-started job, want 0", res.JobsChecked)
	}
}

func TestValidateJobsNonPositiveNodes(t *testing.T) {
	res := ValidateJobs([]trace.JobTrace{jt("a", 0, 0, 10, 20)}, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "positive-nodes")
}

// jtOn builds a job trace carrying its allocated node names.
func jtOn(id string, submit, start, end float64, nodes ...string) trace.JobTrace {
	j := jt(id, len(nodes), submit, start, end)
	j.NodesUsed = nodes
	return j
}

func TestValidateJobsNodeIdentityClean(t *testing.T) {
	jobs := []trace.JobTrace{
		jtOn("a", 0, 0, 100, "n1", "n2"),
		jtOn("b", 0, 0, 100, "n3"),
		jtOn("c", 0, 100, 200, "n1"), // back-to-back on n1: not an overlap
	}
	wantClean(t, ValidateJobs(jobs, ValidateOptions{Nodes: 4}))
}

func TestValidateJobsNodeDoubleBooked(t *testing.T) {
	// 3 nodes in use at any instant on an 8-node cluster — the count-based
	// capacity sweep is blind to this, only the name-based check sees it.
	jobs := []trace.JobTrace{
		jtOn("a", 0, 0, 100, "n1", "n2"),
		jtOn("b", 0, 50, 150, "n2"),
	}
	res := ValidateJobs(jobs, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "node-double-booked")
}

func TestValidateJobsNodeDoubleBookedLongHold(t *testing.T) {
	// The overlap is against an earlier long-running hold, not the
	// immediately preceding interval in start order.
	jobs := []trace.JobTrace{
		jtOn("long", 0, 0, 1000, "n1"),
		jtOn("early", 0, 10, 20, "n2"),
		jtOn("late", 0, 500, 600, "n1"),
	}
	res := ValidateJobs(jobs, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "node-double-booked")
}

func TestValidateJobsNodeAssignmentArity(t *testing.T) {
	j := jt("a", 3, 0, 0, 100)
	j.NodesUsed = []string{"n1", "n2"} // requested 3, holds 2
	res := ValidateJobs([]trace.JobTrace{j}, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "node-assignment-identity")

	dup := jtOn("b", 0, 0, 100, "n1", "n1")
	res = ValidateJobs([]trace.JobTrace{dup}, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "node-assignment-identity")
}

func TestValidateJobsNamelessTracesSkipIdentityCheck(t *testing.T) {
	// Replay traces carry no node names; the identity checks must not fire.
	wantClean(t, ValidateJobs([]trace.JobTrace{jt("a", 4, 0, 0, 100)}, ValidateOptions{Nodes: 8}))
}

func TestThroughputAttributionLeakFlagged(t *testing.T) {
	rec := &trace.Recorder{}
	rec.Throughput.Append(0, 10.0)
	rec.Attributed.Append(0, 10.0)
	rec.Throughput.Append(5, 12.0)
	rec.Attributed.Append(5, 8.0) // 4 GiB/s nobody's job accounts for
	res := ValidateRun(rec, ValidateOptions{})
	wantViolation(t, res, "throughput-attribution")
}

func TestThroughputAttributionToleratesFloatNoise(t *testing.T) {
	rec := &trace.Recorder{}
	rec.Throughput.Append(0, 10.0)
	rec.Attributed.Append(0, 10.0+1e-9) // association-order noise only
	wantClean(t, ValidateRun(rec, ValidateOptions{}))
}

func TestThroughputAttributionSkipsLegacyRecorders(t *testing.T) {
	// A recorder without the attributed series (older trace files rebuilt
	// into a Recorder) must not fail the check.
	rec := &trace.Recorder{}
	rec.Throughput.Append(0, 10.0)
	wantClean(t, ValidateRun(rec, ValidateOptions{}))
}

func TestThroughputAttributionLengthMismatch(t *testing.T) {
	rec := &trace.Recorder{}
	rec.Throughput.Append(0, 10.0)
	rec.Throughput.Append(5, 10.0)
	rec.Attributed.Append(0, 10.0)
	res := ValidateRun(rec, ValidateOptions{})
	wantViolation(t, res, "throughput-attribution")
}

func TestResultErrSummarises(t *testing.T) {
	var res Result
	for i := 0; i < 5; i++ {
		res.violatef("x", "violation %d", i)
	}
	err := res.Err()
	if err == nil {
		t.Fatal("Err() = nil for a dirty result")
	}
	if !strings.Contains(err.Error(), "5 invariant violation(s)") || !strings.Contains(err.Error(), "and 2 more") {
		t.Fatalf("unexpected error text: %v", err)
	}
	var clean Result
	if clean.Err() != nil || !clean.OK() {
		t.Fatal("clean result must be OK with nil Err")
	}
}
