// Workload 2: the paper's six-job-type workload (1550 jobs) that motivates
// the two-group approximation (§VII-A). Compares the I/O-aware scheduler at
// the strict 15 GiB/s limit — which runs out of sleep jobs and idles nodes
// — against the workload-adaptive scheduler with the two-group
// approximation, which keeps nodes busy (cf. paper Fig. 5c vs 5e).
//
//	go run ./examples/workload2
package main

import (
	"fmt"
	"log"

	"wasched/internal/core"
	"wasched/internal/des"
	"wasched/internal/pfs"
	"wasched/internal/trace"
	"wasched/internal/workload"
)

func run(label string, scfg core.SchedulerConfig) *core.System {
	cfg := core.DefaultConfig()
	cfg.Scheduler = scfg
	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	specs := workload.Workload2()
	if err := sys.PretrainIsolated(specs); err != nil {
		log.Fatal(err)
	}
	if err := sys.SubmitAll(specs); err != nil {
		log.Fatal(err)
	}
	sys.Start()
	if err := sys.RunToCompletion(1000 * des.Hour); err != nil {
		log.Fatal(err)
	}
	return sys
}

func idleNodeSeconds(sys *core.System) float64 {
	ms := sys.Makespan().Seconds()
	busy := sys.Recorder.BusyNodes.MeanOver(0, ms)
	return (float64(sys.Cluster.Size()) - busy) * ms
}

func main() {
	ioaware := run("io-aware 15", core.SchedulerConfig{Policy: core.IOAware, ThroughputLimit: 15 * pfs.GiB})
	adaptive := run("adaptive 15", core.SchedulerConfig{Policy: core.Adaptive, ThroughputLimit: 15 * pfs.GiB})
	naive := run("adaptive 15 naive", core.SchedulerConfig{Policy: core.AdaptiveNaive, ThroughputLimit: 15 * pfs.GiB})

	fmt.Printf("Workload 2: %d jobs on 15 nodes, 15 GiB/s limit\n\n", len(workload.Workload2()))
	fmt.Printf("%-36s %12s %14s\n", "configuration", "makespan[s]", "idle[node-s]")
	for _, e := range []struct {
		label string
		sys   *core.System
	}{
		{"I/O-aware (paper Fig. 5c)", ioaware},
		{"adaptive + two-group (paper Fig. 5e)", adaptive},
		{"adaptive, naive (no two-group)", naive},
	} {
		fmt.Printf("%-36s %12.0f %14.0f\n",
			e.label, e.sys.Makespan().Seconds(), idleNodeSeconds(e.sys))
	}

	fmt.Println("\n--- I/O-aware 15 GiB/s: node allocation ---")
	fmt.Print(trace.Plot(&ioaware.Recorder.BusyNodes, 100, 5))
	fmt.Println("\n--- adaptive 15 GiB/s with two-group: node allocation ---")
	fmt.Print(trace.Plot(&adaptive.Recorder.BusyNodes, 100, 5))
}
