package restrack_test

import (
	"fmt"

	"wasched/internal/des"
	"wasched/internal/restrack"
)

// ExampleProfile shows the reservation primitive behind the paper's
// trackers: superimpose box reservations and query the earliest window
// that fits a new demand.
func ExampleProfile() {
	p := restrack.NewProfile()
	// Two running jobs reserve 8 GB/s and 6 GB/s of a 20 GB/s file system.
	p.Add(0, des.TimeFromSeconds(100), 8e9)
	p.Add(0, des.TimeFromSeconds(250), 6e9)

	// When can a job needing 10 GB/s for 60 s start?
	t, ok := p.EarliestFit(0, 60*des.Second, 10e9, 20e9)
	fmt.Println(ok, t)

	// And one needing 15 GB/s? Only after both reservations end.
	t, ok = p.EarliestFit(0, 60*des.Second, 15e9, 20e9)
	fmt.Println(ok, t)
	// Output:
	// true t=100.000000s
	// true t=250.000000s
}

// ExampleNodeTracker mirrors Slurm's node reservation tracking (NT in the
// paper's Algorithm 2).
func ExampleNodeTracker() {
	nt := restrack.NewNodeTracker(15)
	// A running 10-node job holds its allocation until its time limit.
	nt.Reserve(0, des.TimeFromSeconds(600), 10)

	t, ok := nt.EarliestFit(0, 300*des.Second, 5) // fits alongside
	fmt.Println(ok, t)
	t, ok = nt.EarliestFit(0, 300*des.Second, 6) // must wait
	fmt.Println(ok, t)
	// Output:
	// true t=0.000000s
	// true t=600.000000s
}
