package schedcheck

import (
	"math"
	"sort"

	"wasched/internal/des"
	"wasched/internal/sched"
)

// InfLimit is the effectively unbounded throughput limit used for the
// metamorphic baseline: large enough that no realistic workload's rates sum
// anywhere near it, small enough to stay comfortably finite in float64
// arithmetic.
const InfLimit = 1e18

// DiffConfig configures one differential run.
type DiffConfig struct {
	// Nodes is the cluster size (0 = 16).
	Nodes int
	// Limit is R_limit in bytes/s for the throughput-aware policies
	// (0 = 20 GiB/s scaled by nothing — callers pass the paper value).
	Limit float64
	// Options are the backfill engine options shared by every policy.
	Options sched.Options
	// Interval is the scheduling round period (0 = 30 s).
	Interval des.Duration
	// BBCapacity, when positive, gives every replay the same emulated
	// burst-buffer pool (the pool is a property of the cluster, not the
	// policy — BB-blind policies suffer the admission deferrals the
	// BB-aware ones plan around) and adds the BB-aware policies (plan,
	// bb-io-aware) plus property M5 to the differential.
	BBCapacity float64
	// BBStageRate and BBDrainRate are the emulation's stage-in/stage-out
	// throughputs in bytes/s (0 = instantaneous).
	BBStageRate float64
	BBDrainRate float64
}

// DiffResult is one workload replayed through every policy, plus the
// cross-policy findings.
type DiffResult struct {
	// Results maps policy label to its replay. Labels: "default",
	// "io-aware", "adaptive", "adaptive-naive", "io-aware-inf".
	Results map[string]*ReplayResult
	// Check accumulates per-policy invariant findings and the cross-policy
	// metamorphic findings.
	Check Result
}

// The policy labels of a differential run. ioAwareInfLabel is the internal
// baseline — the I/O-aware policy with InfLimit — used by property M2.
const (
	labelDefault  = "default"
	labelIOAware  = "io-aware"
	labelAdaptive = "adaptive"
	labelNaive    = "adaptive-naive"
	labelInf      = "io-aware-inf"
	labelPlan     = "plan"
	labelBBIO     = "bb-io-aware"
	labelPlanInf  = "plan-inf"
)

// PolicyLabels lists the four paper policies replayed by RunDifferential.
func PolicyLabels() []string {
	return []string{labelDefault, labelIOAware, labelAdaptive, labelNaive}
}

// BBPolicyLabels lists the burst-buffer-aware policies that join the
// differential when DiffConfig.BBCapacity is set.
func BBPolicyLabels() []string {
	return []string{labelPlan, labelBBIO}
}

// RunDifferential replays one workload through all four paper policies (plus
// an unbounded-limit I/O-aware baseline) and asserts the metamorphic
// properties that relate them:
//
//	M1 (drain): every policy finishes every job — no policy starves work the
//	    others complete.
//	M2 (limit elision): the I/O-aware policy with an unbounded R_limit makes
//	    the same start decisions as the node-only policy, start-for-start.
//	    The bandwidth tracker can only delay jobs; with no effective limit it
//	    must be inert.
//	M3 (zero-rate collapse): when no job does any I/O (true and estimated
//	    rates all zero), every throughput-aware policy must equal plain
//	    backfill — rates of zero can never occupy bandwidth.
//	M4 (homogeneous regulation-free): when every job has the same per-node
//	    intensity r_j/n_j and estimates are exact, the adaptive target
//	    R̃ = Σr·d·N/Σn·d equals that intensity times the cluster size, so
//	    regulation never binds: adaptive, naive adaptive and plain I/O-aware
//	    must schedule identically.
//	M5 (BB elision): the plan policy with an unbounded burst-buffer pool
//	    makes the same start decisions as the node-only policy — like M2's
//	    bandwidth tracker, the BB tracker can only delay jobs, so with no
//	    effective capacity it must be inert. Checked only when
//	    DiffConfig.BBCapacity is set (both replays still run under the
//	    same finite-pool admission emulation, which identical decisions
//	    traverse identically).
//
// M3, M4 and M5 are conditional — on workload shape, or on a configured
// burst buffer — and checked only when their precondition holds; M1 and M2
// always apply.
func RunDifferential(workload []SimJob, cfg DiffConfig) *DiffResult {
	nodes := cfg.Nodes
	if nodes <= 0 {
		nodes = 16
	}
	limit := cfg.Limit
	if limit <= 0 {
		limit = 20 * 1024 * 1024 * 1024
	}

	type variant struct {
		label  string
		policy sched.Policy
		limit  float64 // for the replay bandwidth invariant; 0 = no check
	}
	variants := []variant{
		{labelDefault, sched.NodePolicy{TotalNodes: nodes}, 0},
		{labelIOAware, sched.IOAwarePolicy{TotalNodes: nodes, ThroughputLimit: limit}, limit},
		{labelAdaptive, sched.AdaptivePolicy{TotalNodes: nodes, ThroughputLimit: limit, TwoGroup: true}, limit},
		{labelNaive, sched.AdaptivePolicy{TotalNodes: nodes, ThroughputLimit: limit, TwoGroup: false}, limit},
		{labelInf, sched.IOAwarePolicy{TotalNodes: nodes, ThroughputLimit: InfLimit}, 0},
	}
	if cfg.BBCapacity > 0 {
		variants = append(variants,
			variant{labelPlan, sched.PlanPolicy{TotalNodes: nodes, BBCapacity: cfg.BBCapacity, ThroughputLimit: limit}, limit},
			variant{labelBBIO, sched.BBAwarePolicy{Inner: sched.IOAwarePolicy{TotalNodes: nodes, ThroughputLimit: limit}, Capacity: cfg.BBCapacity}, limit},
			variant{labelPlanInf, sched.PlanPolicy{TotalNodes: nodes, BBCapacity: InfLimit}, 0},
		)
	}

	res := &DiffResult{Results: make(map[string]*ReplayResult, len(variants))}
	for _, v := range variants {
		r := Replay(workload, ReplayConfig{
			Policy:      v.policy,
			Options:     cfg.Options,
			Interval:    cfg.Interval,
			Nodes:       nodes,
			Limit:       v.limit,
			BBCapacity:  cfg.BBCapacity,
			BBStageRate: cfg.BBStageRate,
			BBDrainRate: cfg.BBDrainRate,
		})
		res.Results[v.label] = r
		for _, viol := range r.Check.Violations {
			res.Check.violatef(viol.Invariant, "[%s] %s", v.label, viol.Detail)
		}
		res.Check.Warnings = append(res.Check.Warnings, r.Check.Warnings...)
		res.Check.JobsChecked += r.Check.JobsChecked

		// M1: drain.
		if got := len(r.Jobs); got != len(workload) {
			res.Check.violatef("m1-drain", "[%s] completed %d of %d jobs", v.label, got, len(workload))
		}
	}

	// M2: unbounded-limit I/O-aware ≡ node-only.
	compareStarts(res, labelInf, labelDefault, "m2-limit-elision")

	if allZeroRate(workload) {
		// M3: no I/O anywhere — every policy collapses to plain backfill.
		for _, label := range []string{labelIOAware, labelAdaptive, labelNaive} {
			compareStarts(res, label, labelDefault, "m3-zero-rate")
		}
	}

	if homogeneousExact(workload) {
		// M4: uniform per-node intensity with exact estimates — adaptive
		// regulation must not bind.
		compareStarts(res, labelAdaptive, labelIOAware, "m4-homogeneous")
		compareStarts(res, labelNaive, labelIOAware, "m4-homogeneous")
	}

	if cfg.BBCapacity > 0 {
		// M5: unbounded-pool plan ≡ node-only.
		compareStarts(res, labelPlanInf, labelDefault, "m5-bb-elision")
	}
	return res
}

// compareStarts asserts two replays made identical start decisions.
func compareStarts(res *DiffResult, got, want, invariant string) {
	a, b := res.Results[got], res.Results[want]
	if a == nil || b == nil {
		return
	}
	// Iterate in sorted job order: with the report capped at three
	// differences, map order would otherwise decide which ones are shown
	// and the violation text would differ between replays of the same run.
	ids := make([]string, 0, len(b.Starts))
	for id := range b.Starts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	diffs := 0
	for _, id := range ids {
		tb := b.Starts[id]
		ta, ok := a.Starts[id]
		if !ok {
			res.Check.violatef(invariant, "job %s started under %s at %v but never under %s", id, want, tb, got)
			diffs++
		} else if ta != tb {
			res.Check.violatef(invariant, "job %s: %s started it at %v, %s at %v", id, got, ta, want, tb)
			diffs++
		}
		if diffs >= 3 {
			res.Check.violatef(invariant, "(further %s/%s start differences elided)", got, want)
			return
		}
	}
	ids = ids[:0]
	for id := range a.Starts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if _, ok := b.Starts[id]; !ok {
			res.Check.violatef(invariant, "job %s started under %s but never under %s", id, got, want)
			return
		}
	}
}

// allZeroRate reports whether the workload does no I/O at all, true or
// estimated — the precondition of M3.
func allZeroRate(workload []SimJob) bool {
	for _, j := range workload {
		if j.Rate != 0 || j.EstRate != 0 {
			return false
		}
	}
	return true
}

// homogeneousExact reports whether every job shares one per-node intensity
// r/n with exact estimates and positive I/O — the precondition of M4. The
// ratio comparison is exact: the property proof needs bitwise-equal ratios,
// which the homogeneous generator guarantees by using power-of-two widths.
func homogeneousExact(workload []SimJob) bool {
	if len(workload) == 0 {
		return false
	}
	ratio := math.NaN()
	for _, j := range workload {
		if j.Nodes < 1 || j.Rate <= 0 || j.EstRate != j.Rate || j.EstRuntime != j.Actual {
			return false
		}
		r := j.Rate / float64(j.Nodes)
		if math.IsNaN(ratio) {
			ratio = r
		} else if r != ratio {
			return false
		}
	}
	return true
}
