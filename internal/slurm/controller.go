// Package slurm implements the resource-manager controller of the
// prototype: the job queue, submission and lifetime management, periodic
// backfill scheduling rounds, time-limit enforcement, and the wiring
// between the scheduling policy (internal/sched), the analytics service
// (internal/analytics) and the cluster (internal/cluster).
//
// It corresponds to the paper's modified slurmctld plus scheduling plugin
// (Fig. 2): at the beginning of every scheduling round the controller
// fetches the latest job resource estimates and the measured Lustre
// throughput from the analytical services, hands the queue to the policy,
// and applies the policy's start decisions.
package slurm

import (
	"fmt"
	"math"
	"sort"

	"wasched/internal/analytics"
	"wasched/internal/cluster"
	"wasched/internal/des"
	"wasched/internal/sched"
)

// BurstBuffer is the controller's view of a burst-buffer tier
// (internal/bb.Tier implements it). Admit reserves capacity for a start
// (an error defers the start to a later round), Wrap prefixes the job's
// program with its stage-in, and JobEnded triggers the dirty-data drain
// and eventual capacity release.
type BurstBuffer interface {
	Feasible(bytes float64, nodes int) error
	Admit(jobID string, bytes float64, nodes int) error
	Wrap(jobID string, inner cluster.Program) cluster.Program
	JobEnded(jobID string, requeued bool)
}

// TokenLimiter is the controller's view of the client-side token-bucket
// bandwidth layer (internal/tbf.Limiter implements it). Every started job
// gets a bucket for the lifetime of its attempt — the layer is pure
// execution-time control, so unlike the burst buffer it needs no
// admission gate and works under any scheduling policy.
type TokenLimiter interface {
	Register(jobID string, nodes []string)
	Unregister(jobID string)
}

// JobState is the lifecycle state of a job record.
type JobState int

// Job lifecycle states.
const (
	StatePending JobState = iota
	StateRunning
	StateCompleted
	StateTimeout   // killed at its requested limit L_j
	StateCancelled // dependency can never be satisfied
	StateNodeFail  // lost its node and requeueing is disabled
)

// String returns the Slurm-style state name.
func (s JobState) String() string {
	switch s {
	case StatePending:
		return "PENDING"
	case StateRunning:
		return "RUNNING"
	case StateCompleted:
		return "COMPLETED"
	case StateTimeout:
		return "TIMEOUT"
	case StateCancelled:
		return "CANCELLED"
	case StateNodeFail:
		return "NODE_FAIL"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// JobSpec is a job submission request.
type JobSpec struct {
	// Name labels the job in traces.
	Name string
	// Fingerprint identifies the job's class for the estimator. Empty
	// defaults to Name.
	Fingerprint string
	// Nodes is the requested node count n_j.
	Nodes int
	// Limit is the requested runtime limit L_j.
	Limit des.Duration
	// Priority orders the queue (higher first; FIFO within a priority).
	Priority int64
	// Program is the job's behaviour once started.
	Program cluster.Program
	// DeclaredRate is the user-declared Lustre throughput in bytes/s for
	// the static-license integration path (paper §II-A); ignored unless
	// Config.UseDeclaredRates is set.
	DeclaredRate float64
	// DependsOn holds job IDs that must COMPLETE (Slurm's afterok) before
	// this job becomes eligible. If any dependency times out or is
	// cancelled, this job is cancelled (DependencyNeverSatisfied).
	DependsOn []string
	// User is the submitting user for fair-share accounting (empty = the
	// anonymous user).
	User string
	// BBBytes is the job's burst-buffer reservation request in bytes
	// (Slurm's #DW capacity). Zero requests no burst buffer; positive
	// requests require an attached tier (AttachBB) and gate the start on
	// admission: a start decision whose demand does not fit the free pool
	// is deferred to a later round.
	BBBytes float64
}

// validate checks a spec against the cluster.
func (s JobSpec) validate(clusterSize int) error {
	if s.Nodes <= 0 {
		return fmt.Errorf("slurm: job %q requests %d nodes", s.Name, s.Nodes)
	}
	if s.Nodes > clusterSize {
		return fmt.Errorf("slurm: job %q requests %d nodes, cluster has %d", s.Name, s.Nodes, clusterSize)
	}
	if s.Limit <= 0 {
		return fmt.Errorf("slurm: job %q needs a positive time limit", s.Name)
	}
	if s.Program == nil {
		return fmt.Errorf("slurm: job %q has no program", s.Name)
	}
	if s.BBBytes < 0 || math.IsNaN(s.BBBytes) {
		return fmt.Errorf("slurm: job %q requests %g burst-buffer bytes", s.Name, s.BBBytes)
	}
	return nil
}

// JobRecord is the controller's accounting record for one job.
type JobRecord struct {
	ID     string
	Spec   JobSpec
	State  JobState
	Submit des.Time // s_j
	Start  des.Time // b_j (zero until started)
	End    des.Time // c_j (zero until ended)
	Nodes  []string // allocated nodes (set at start)
	// EligibleAt is when the job last (re)joined the pending queue: the
	// submit time, or the most recent requeue. The FIFO-within-class
	// invariant orders attempts by this, not by Submit — a requeued job
	// keeps its submit-time queue position but was demonstrably not
	// waiting between its preemption and its restart.
	EligibleAt des.Time
	// Attempts counts how many times the job has started (>1 after
	// requeue preemption or node-failure requeues).
	Attempts int

	view    sched.Job // the scheduler's mutable view
	timeout des.Event
	held    int // unsatisfied dependency count; schedulable at 0
}

// Held reports whether the job is waiting on dependencies.
func (r *JobRecord) Held() bool { return r.held > 0 }

// WaitTime returns Q_j for started jobs.
func (r *JobRecord) WaitTime() des.Duration { return r.Start.Sub(r.Submit) }

// Runtime returns D_j for ended jobs.
func (r *JobRecord) Runtime() des.Duration { return r.End.Sub(r.Start) }

// EventKind labels controller notifications.
type EventKind int

// Event kinds.
const (
	EventSubmit EventKind = iota
	EventStart
	EventEnd
	// EventRequeue fires when a running job is preempted and returned to
	// the queue.
	EventRequeue
)

// Event is a job lifecycle notification delivered to listeners.
type Event struct {
	Kind EventKind
	Job  *JobRecord
	At   des.Time
}

// Config tunes the controller.
type Config struct {
	// SchedInterval is the period of backfill scheduling rounds (Slurm
	// bf_interval; the paper's prototype uses the default 30 s).
	SchedInterval des.Duration
	// Options configure the backfill engine (BackfillMax, MaxJobTest).
	Options sched.Options
	// UseDeclaredRates feeds JobSpec.DeclaredRate to the policy instead
	// of analytics estimates — the static "license" integration the paper
	// argues against (§II-A); used by the ablation experiments.
	UseDeclaredRates bool
	// Priority optionally recomputes job priorities every round (Slurm's
	// priority/multifactor plugin). Nil keeps static submit priorities.
	Priority PriorityPlugin
	// Preemption enables requeue-based preemption (Slurm's
	// PreemptMode=REQUEUE) for starvation control.
	Preemption PreemptionConfig
	// DisableNodeFailRequeue keeps jobs that lose a node in the terminal
	// NODE_FAIL state instead of requeueing them (Slurm's JobRequeue=0).
	DisableNodeFailRequeue bool
	// RateQuantile, when in (0,1], replaces the EWMA rate estimate with
	// the given quantile of the class's observed rates (falling back to
	// the EWMA when no history exists). 0.9 makes the I/O-aware scheduler
	// conservative: it budgets for the class's near-worst observed load.
	RateQuantile float64
}

// PreemptionConfig tunes requeue-based preemption: when the head of the
// queue has waited longer than MaxStarvation and still cannot start, the
// controller kills (and requeues) the lowest-priority running jobs whose
// priority trails the starved job's by at least PriorityGap, until enough
// nodes free up.
type PreemptionConfig struct {
	Enabled bool
	// MaxStarvation is how long the queue head may wait before preemption
	// triggers (0 = 30 min).
	MaxStarvation des.Duration
	// PriorityGap is the minimum priority difference between the starved
	// job and a victim.
	PriorityGap int64
}

// DefaultConfig matches the paper's Slurm setup: 30 s rounds, unlimited
// backfill reservations, whole queue examined.
func DefaultConfig() Config {
	return Config{
		SchedInterval: 30 * des.Second,
		Options:       sched.Options{BackfillMax: sched.Unlimited, MaxJobTest: 0},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.SchedInterval <= 0 {
		return fmt.Errorf("slurm: SchedInterval must be positive, got %v", c.SchedInterval)
	}
	if c.Options.BackfillMax < 0 {
		return fmt.Errorf("slurm: BackfillMax must be non-negative, got %d", c.Options.BackfillMax)
	}
	if c.Options.MaxJobTest < 0 {
		return fmt.Errorf("slurm: MaxJobTest must be non-negative, got %d", c.Options.MaxJobTest)
	}
	if c.RateQuantile < 0 || c.RateQuantile > 1 {
		return fmt.Errorf("slurm: RateQuantile must be in [0,1], got %g", c.RateQuantile)
	}
	return nil
}

// Controller is the resource manager.
type Controller struct {
	eng    *des.Engine
	cl     *cluster.Cluster
	policy sched.Policy
	svc    *analytics.Service // may be nil (default policy needs none)
	cfg    Config

	pending   []*JobRecord
	runningID map[string]*JobRecord
	done      []*JobRecord
	byID      map[string]*JobRecord
	nextID    int
	// dependents maps a job ID to the records held on it.
	dependents map[string][]*JobRecord

	listeners   []func(Event)
	stopTicker  func()
	kickPending bool
	rounds      uint64
	started     bool
	lastDiag    map[string]float64
	requeuing   map[string]bool
	requeues    uint64

	bb         BurstBuffer
	bbDeferred uint64
	tbf        TokenLimiter
}

// New creates a controller. svc may be nil when the policy ignores
// estimates (the default node policy); estimate-driven policies without a
// service see zero rates, which reproduces the "untrained, unmonitored"
// degenerate case.
func New(eng *des.Engine, cl *cluster.Cluster, policy sched.Policy, svc *analytics.Service, cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("slurm: nil policy")
	}
	return &Controller{
		eng:        eng,
		cl:         cl,
		policy:     policy,
		svc:        svc,
		cfg:        cfg,
		runningID:  make(map[string]*JobRecord),
		byID:       make(map[string]*JobRecord),
		dependents: make(map[string][]*JobRecord),
		requeuing:  make(map[string]bool),
	}, nil
}

// AttachBB wires a burst-buffer tier into the start/end path. Call once
// during system assembly, before any BB-requesting job is submitted.
func (c *Controller) AttachBB(b BurstBuffer) {
	if c.bb != nil {
		panic("slurm: burst buffer already attached")
	}
	c.bb = b
}

// BBDeferred returns how many start decisions were deferred because the
// burst-buffer pool could not admit them that round.
func (c *Controller) BBDeferred() uint64 { return c.bbDeferred }

// AttachTBF wires the token-bucket bandwidth limiter into the start/end
// path. Call once during system assembly.
func (c *Controller) AttachTBF(l TokenLimiter) {
	if c.tbf != nil {
		panic("slurm: token limiter already attached")
	}
	c.tbf = l
}

// OnEvent registers a lifecycle listener (used by the trace recorder).
func (c *Controller) OnEvent(fn func(Event)) { c.listeners = append(c.listeners, fn) }

func (c *Controller) emit(kind EventKind, r *JobRecord) {
	ev := Event{Kind: kind, Job: r, At: c.eng.Now()}
	for _, fn := range c.listeners {
		fn(ev)
	}
}

// Run starts the periodic scheduling rounds. Call once, after wiring.
func (c *Controller) Run() {
	if c.started {
		panic("slurm: controller already running")
	}
	c.started = true
	c.stopTicker = c.eng.Ticker(c.cfg.SchedInterval, "slurm/sched-round", func(des.Time) {
		c.scheduleRound()
	})
	c.kick()
}

// Stop halts scheduling (periodic rounds and event-driven kicks); running
// jobs keep running. Run may be called again to resume.
func (c *Controller) Stop() {
	if c.stopTicker != nil {
		c.stopTicker()
		c.stopTicker = nil
	}
	c.started = false
}

// Submit enqueues a job now and returns its record.
func (c *Controller) Submit(spec JobSpec) (*JobRecord, error) {
	if err := spec.validate(c.cl.Size()); err != nil {
		return nil, err
	}
	if spec.BBBytes > 0 {
		// Reject demands that could never be admitted (no tier, or more
		// than the whole pool) up front — deferral would pend them forever.
		if c.bb == nil {
			return nil, fmt.Errorf("slurm: job %q requests burst buffer but none is attached", spec.Name)
		}
		if err := c.bb.Feasible(spec.BBBytes, spec.Nodes); err != nil {
			return nil, fmt.Errorf("slurm: job %q: %w", spec.Name, err)
		}
	}
	c.nextID++
	fp := spec.Fingerprint
	if fp == "" {
		fp = spec.Name
		spec.Fingerprint = fp
	}
	r := &JobRecord{
		ID:         fmt.Sprintf("job-%05d", c.nextID),
		Spec:       spec,
		State:      StatePending,
		Submit:     c.eng.Now(),
		EligibleAt: c.eng.Now(),
	}
	r.view = sched.Job{
		ID:          r.ID,
		Fingerprint: fp,
		Nodes:       spec.Nodes,
		Limit:       spec.Limit,
		Submit:      r.Submit,
		Priority:    spec.Priority,
		BBBytes:     spec.BBBytes,
	}
	for _, depID := range spec.DependsOn {
		dep, ok := c.byID[depID]
		if !ok {
			c.nextID-- // roll back the consumed ID
			return nil, fmt.Errorf("slurm: job %q depends on unknown job %q", spec.Name, depID)
		}
		switch dep.State {
		case StateCompleted:
			// Already satisfied.
		case StateTimeout, StateCancelled:
			c.nextID--
			return nil, fmt.Errorf("slurm: job %q depends on failed job %q", spec.Name, depID)
		default:
			r.held++
			c.dependents[depID] = append(c.dependents[depID], r)
		}
	}
	c.pending = append(c.pending, r)
	c.byID[r.ID] = r
	c.emit(EventSubmit, r)
	if c.started {
		c.kick()
	}
	return r, nil
}

// SubmitArray submits count copies of spec (a Slurm job array) and
// returns their records in index order.
func (c *Controller) SubmitArray(spec JobSpec, count int) ([]*JobRecord, error) {
	if count <= 0 {
		return nil, fmt.Errorf("slurm: array size must be positive, got %d", count)
	}
	recs := make([]*JobRecord, 0, count)
	for i := 0; i < count; i++ {
		r, err := c.Submit(spec)
		if err != nil {
			return recs, fmt.Errorf("slurm: array element %d: %w", i, err)
		}
		recs = append(recs, r)
	}
	return recs, nil
}

// SubmitAt schedules a submission at a future time (arrival processes).
func (c *Controller) SubmitAt(spec JobSpec, at des.Time) error {
	if err := spec.validate(c.cl.Size()); err != nil {
		return err
	}
	c.eng.At(at, "slurm/submit", func() {
		if _, err := c.Submit(spec); err != nil {
			panic(fmt.Sprintf("slurm: deferred submit: %v", err))
		}
	})
	return nil
}

// kick schedules an immediate extra round (coalesced) — Slurm's main
// scheduling loop reacting to submissions and completions.
func (c *Controller) kick() {
	if c.kickPending || !c.started {
		return
	}
	c.kickPending = true
	c.eng.After(0, "slurm/sched-kick", func() {
		c.kickPending = false
		c.scheduleRound()
	})
}

// refreshEstimates updates a job view's r_j and d_j from the analytics
// service (or the declared values under the license configuration).
func (c *Controller) refreshEstimates(r *JobRecord) {
	if c.cfg.UseDeclaredRates {
		r.view.Rate = r.Spec.DeclaredRate
		r.view.EstRuntime = 0 // falls back to L_j
		return
	}
	if c.svc == nil {
		return
	}
	est, ok := c.svc.Estimate(r.view.Fingerprint)
	if !ok {
		r.view.Rate = 0
		r.view.EstRuntime = 0
		return
	}
	r.view.Rate = est.Rate
	r.view.EstRuntime = est.Runtime
	if q := c.cfg.RateQuantile; q > 0 {
		if rate, ok := c.svc.QuantileRate(r.view.Fingerprint, q); ok {
			r.view.Rate = rate
		}
	}
}

// scheduleRound runs one backfill round (paper Algorithm 1) and starts the
// jobs the policy selected.
func (c *Controller) scheduleRound() {
	c.rounds++
	if len(c.pending) == 0 {
		return
	}
	// Line 1 inputs: latest estimates and the measured throughput.
	runningViews := make([]*sched.Job, 0, len(c.runningID))
	runningIDs := make([]string, 0, len(c.runningID))
	for id := range c.runningID {
		runningIDs = append(runningIDs, id)
	}
	sort.Strings(runningIDs)
	for _, id := range runningIDs {
		r := c.runningID[id]
		c.refreshEstimates(r)
		runningViews = append(runningViews, &r.view)
	}
	waitingViews := make([]*sched.Job, 0, len(c.pending))
	for _, r := range c.pending {
		if r.held > 0 {
			continue // dependencies outstanding
		}
		c.refreshEstimates(r)
		if c.cfg.Priority != nil {
			r.view.Priority = c.cfg.Priority.Priority(r, c.eng.Now())
		}
		waitingViews = append(waitingViews, &r.view)
	}
	sched.SortQueue(waitingViews)
	measured := 0.0
	if c.svc != nil && !c.cfg.UseDeclaredRates {
		measured = c.svc.CurrentThroughput()
	}
	in := sched.RoundInput{
		Now:                c.eng.Now(),
		Running:            runningViews,
		Waiting:            waitingViews,
		MeasuredThroughput: measured,
		UnavailableNodes:   c.cl.DownNodes(),
	}
	decisions, round := sched.RunRound(c.policy, in, c.cfg.Options)
	if diag, ok := round.(sched.Diagnoser); ok {
		c.lastDiag = diag.Diagnostics()
	}
	for _, j := range sched.StartNowJobs(decisions) {
		r := c.byID[j.ID]
		if c.bb != nil && r.Spec.BBBytes > 0 {
			// Burst-buffer admission gates the start: BB-blind policies
			// hand out start-now decisions the pool cannot hold (drains
			// of finished jobs still occupy it), and those jobs simply
			// stay pending and are retried next round. Plan-based
			// policies rarely hit this — they co-reserved the pool.
			if err := c.bb.Admit(r.ID, r.Spec.BBBytes, r.Spec.Nodes); err != nil {
				c.bbDeferred++
				continue
			}
		}
		c.startJob(r)
	}
	if c.cfg.Preemption.Enabled {
		c.maybePreempt(decisions)
	}
}

// maybePreempt implements requeue preemption: if the highest-priority
// waiting job has starved past the threshold and did not start this round,
// requeue enough lower-priority running jobs to free its nodes. The freed
// nodes are picked from the lowest-priority victims first.
func (c *Controller) maybePreempt(decisions []sched.Decision) {
	starve := c.cfg.Preemption.MaxStarvation
	if starve == 0 {
		starve = 30 * des.Minute
	}
	var head *JobRecord
	for _, d := range decisions {
		if d.StartNow {
			continue
		}
		head = c.byID[d.Job.ID]
		break
	}
	if head == nil || c.eng.Now().Sub(head.Submit) < starve {
		return
	}
	needed := head.Spec.Nodes - c.cl.FreeNodes()
	if needed <= 0 {
		return // blocked on something other than nodes; preemption cannot help
	}
	// Victims: running jobs whose priority trails by at least the gap,
	// lowest priority first, most recently started first as tiebreak.
	type victim struct{ r *JobRecord }
	var victims []victim
	for _, r := range c.runningID {
		if head.view.Priority-r.view.Priority >= c.cfg.Preemption.PriorityGap {
			victims = append(victims, victim{r})
		}
	}
	sort.Slice(victims, func(a, b int) bool {
		va, vb := victims[a].r, victims[b].r
		if va.view.Priority != vb.view.Priority {
			return va.view.Priority < vb.view.Priority
		}
		if va.Start != vb.Start {
			return va.Start > vb.Start
		}
		return va.ID < vb.ID
	})
	freed := 0
	for _, v := range victims {
		if freed >= needed {
			break
		}
		freed += v.r.Spec.Nodes
		c.requeue(v.r)
	}
}

// requeue kills a running job and returns it to the pending queue with its
// original submit time; the program restarts from scratch when the job is
// next scheduled (requeue preemption loses partial work, as in Slurm).
func (c *Controller) requeue(r *JobRecord) {
	if r.State != StateRunning {
		return
	}
	c.requeuing[r.ID] = true
	c.cl.Kill(r.ID)
}

// Diagnostics returns the most recent scheduling round's policy internals
// (the adaptive target R̃, the two-group threshold r*, ...) or nil when the
// policy exposes none. Values are a snapshot; do not mutate.
func (c *Controller) Diagnostics() map[string]float64 { return c.lastDiag }

// startJob launches a pending job on the cluster and arms its time limit.
func (c *Controller) startJob(r *JobRecord) {
	if r.State != StatePending {
		panic(fmt.Sprintf("slurm: starting job %s in state %v", r.ID, r.State))
	}
	prog := r.Spec.Program
	if c.bb != nil && r.Spec.BBBytes > 0 {
		prog = c.bb.Wrap(r.ID, prog)
	}
	exec, err := c.cl.Start(r.ID, r.Spec.Nodes, prog, func(e *cluster.Execution) {
		c.jobEnded(r, e)
	})
	if err != nil {
		// The policy promised the nodes are free; a failure here is a
		// scheduling bug, not a runtime condition.
		panic(fmt.Sprintf("slurm: start %s: %v", r.ID, err))
	}
	r.State = StateRunning
	r.Start = c.eng.Now()
	r.Nodes = exec.Nodes
	r.Attempts++
	r.view.StartedAt = r.Start
	c.removePending(r)
	c.runningID[r.ID] = r
	if c.tbf != nil {
		c.tbf.Register(r.ID, exec.Nodes)
	}
	r.timeout = c.eng.After(r.Spec.Limit, "slurm/timeout/"+r.ID, func() {
		c.cl.Kill(r.ID)
	})
	c.emit(EventStart, r)
}

func (c *Controller) removePending(r *JobRecord) {
	for i, p := range c.pending {
		if p == r {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("slurm: job %s not in pending queue", r.ID))
}

// jobEnded finalises accounting when an execution finishes and notifies
// the analytics service so the job's class estimate updates (paper §III).
func (c *Controller) jobEnded(r *JobRecord, e *cluster.Execution) {
	c.eng.Cancel(r.timeout)
	r.timeout = des.Event{}
	if c.requeuing[r.ID] || (e.Exit == cluster.ExitNodeFail && !c.cfg.DisableNodeFailRequeue) {
		// Preempted: back to the queue, original submit time preserved.
		// Emit while the attempt's Start/End/EligibleAt are still intact —
		// listeners (the trace recorder) record the finished attempt, which
		// is what lets the FIFO-within-class invariant keep running under
		// requeues instead of being skipped wholesale.
		delete(c.requeuing, r.ID)
		delete(c.runningID, r.ID)
		c.requeues++
		r.State = StatePending
		r.End = c.eng.Now()
		if c.bb != nil && r.Spec.BBBytes > 0 {
			c.bb.JobEnded(r.ID, true)
		}
		if c.tbf != nil {
			c.tbf.Unregister(r.ID)
		}
		c.emit(EventRequeue, r)
		r.Start = 0
		r.End = 0
		r.Nodes = nil
		r.view.StartedAt = 0
		r.EligibleAt = c.eng.Now()
		c.pending = append(c.pending, r)
		c.kick()
		return
	}
	switch e.Exit {
	case cluster.ExitKilled:
		r.State = StateTimeout
	case cluster.ExitNodeFail:
		r.State = StateNodeFail
	default:
		r.State = StateCompleted
	}
	r.End = c.eng.Now()
	delete(c.runningID, r.ID)
	c.done = append(c.done, r)
	if c.bb != nil && r.Spec.BBBytes > 0 {
		c.bb.JobEnded(r.ID, false)
	}
	if c.tbf != nil {
		c.tbf.Unregister(r.ID)
	}
	if c.svc != nil {
		c.svc.JobCompleted(r.view.Fingerprint, r.Nodes, r.Start, r.End)
	}
	if c.cfg.Priority != nil {
		c.cfg.Priority.JobEnded(r)
	}
	c.emit(EventEnd, r)
	c.resolveDependents(r)
	c.kick()
}

// resolveDependents releases (or cancels) jobs held on the ended job.
func (c *Controller) resolveDependents(r *JobRecord) {
	deps := c.dependents[r.ID]
	delete(c.dependents, r.ID)
	for _, d := range deps {
		if d.State != StatePending {
			continue
		}
		if r.State == StateCompleted {
			d.held--
			continue
		}
		// afterok with a failed dependency: DependencyNeverSatisfied.
		c.cancel(d)
	}
}

// cancel removes a pending job (dependency failure) and recursively
// cancels anything held on it.
func (c *Controller) cancel(r *JobRecord) {
	if r.State != StatePending {
		return
	}
	r.State = StateCancelled
	r.End = c.eng.Now()
	c.removePending(r)
	c.done = append(c.done, r)
	c.emit(EventEnd, r)
	c.resolveDependents(r)
}

// QueueLength returns the number of pending jobs.
func (c *Controller) QueueLength() int { return len(c.pending) }

// RunningCount returns the number of running jobs.
func (c *Controller) RunningCount() int { return len(c.runningID) }

// AppendRunningJobs appends the currently running job records to dst and
// returns it, sorted by ID so that float accumulation over the result is
// reproducible (the trace recorder sums attributed rates every sample).
func (c *Controller) AppendRunningJobs(dst []*JobRecord) []*JobRecord {
	start := len(dst)
	for _, r := range c.runningID {
		//waschedlint:allow maporder the appended tail is sorted by ID below before anything observes it
		dst = append(dst, r)
	}
	running := dst[start:]
	sort.Slice(running, func(a, b int) bool { return running[a].ID < running[b].ID })
	return dst
}

// DoneCount returns the number of finished jobs.
func (c *Controller) DoneCount() int { return len(c.done) }

// Rounds returns how many scheduling rounds have run.
func (c *Controller) Rounds() uint64 { return c.rounds }

// Requeues returns how many preemption requeues have occurred.
func (c *Controller) Requeues() uint64 { return c.requeues }

// Job returns a record by ID.
func (c *Controller) Job(id string) (*JobRecord, bool) {
	r, ok := c.byID[id]
	return r, ok
}

// DoneJobs returns finished job records in completion order.
func (c *Controller) DoneJobs() []*JobRecord {
	out := make([]*JobRecord, len(c.done))
	copy(out, c.done)
	return out
}

// Idle reports whether no work remains (empty queue, nothing running).
func (c *Controller) Idle() bool { return len(c.pending) == 0 && len(c.runningID) == 0 }

// Makespan returns the completion time of the last finished job.
func (c *Controller) Makespan() des.Time {
	var last des.Time
	for _, r := range c.done {
		if r.End > last {
			last = r.End
		}
	}
	return last
}

// Policy returns the active scheduling policy.
func (c *Controller) Policy() sched.Policy { return c.policy }

// Cluster returns the managed cluster.
func (c *Controller) Cluster() *cluster.Cluster { return c.cl }
