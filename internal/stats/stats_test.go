package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanStd(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("empty mean must be NaN")
	}
	if !almostEq(Mean([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("mean")
	}
	if !math.IsNaN(Std([]float64{1})) {
		t.Fatal("singleton std must be NaN")
	}
	if !almostEq(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}), math.Sqrt(32.0/7)) {
		t.Fatalf("std = %v", Std([]float64{2, 4, 4, 4, 5, 5, 7, 9}))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	if !almostEq(Quantile(xs, 0), 1) || !almostEq(Quantile(xs, 1), 5) {
		t.Fatal("extremes")
	}
	if !almostEq(Quantile(xs, 0.5), 3) {
		t.Fatal("median odd")
	}
	if !almostEq(Median([]float64{1, 2, 3, 4}), 2.5) {
		t.Fatal("median even interpolates")
	}
	if !almostEq(Quantile([]float64{0, 10}, 0.25), 2.5) {
		t.Fatal("interpolation")
	}
	if !almostEq(Quantile([]float64{7}, 0.9), 7) {
		t.Fatal("singleton")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Fatal("invalid inputs must be NaN")
	}
	// Input must not be mutated.
	orig := []float64{9, 1, 5}
	Quantile(orig, 0.5)
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		qa := math.Abs(math.Mod(a, 1))
		qb := math.Abs(math.Mod(b, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(raw, qa) <= Quantile(raw, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBoxStats(t *testing.T) {
	if b := BoxStats(nil); b.N != 0 {
		t.Fatal("empty box")
	}
	b := BoxStats([]float64{1, 2, 3, 4, 5, 6, 7, 8, 100})
	if b.N != 9 || b.Min != 1 || b.Max != 100 {
		t.Fatalf("box: %v", b)
	}
	if !almostEq(b.Median, 5) {
		t.Fatalf("median: %v", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers: %v", b.Outliers)
	}
	if b.WhiskerHi != 8 || b.WhiskerLo != 1 {
		t.Fatalf("whiskers: %v %v", b.WhiskerLo, b.WhiskerHi)
	}
	if b.String() == "" {
		t.Fatal("String")
	}
}

func TestBoxStatsOrderInvariantProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		b := BoxStats(xs)
		if len(xs) == 0 {
			return b.N == 0
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Median && b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.WhiskerLo >= b.Min && b.WhiskerHi <= b.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSwarm(t *testing.T) {
	s := NewSwarm("adaptive", []float64{5, 1, 3})
	if s.Label != "adaptive" || !almostEq(s.Median, 3) {
		t.Fatalf("swarm: %+v", s)
	}
	if s.Values[0] != 1 || s.Values[2] != 5 {
		t.Fatal("values must be sorted")
	}
}

func TestRelChange(t *testing.T) {
	if !almostEq(RelChange(88, 100), -0.12) {
		t.Fatalf("RelChange: %v", RelChange(88, 100))
	}
	if !math.IsNaN(RelChange(1, 0)) {
		t.Fatal("zero base must be NaN")
	}
}

func TestBootstrap(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	lo, hi := Bootstrap(xs, 0.95, 500, 42)
	if math.IsNaN(lo) || math.IsNaN(hi) || lo > 50 || hi < 50 || lo >= hi {
		t.Fatalf("bootstrap CI [%v, %v] must bracket the median 50", lo, hi)
	}
	// Deterministic for the same seed.
	lo2, hi2 := Bootstrap(xs, 0.95, 500, 42)
	if lo != lo2 || hi != hi2 {
		t.Fatal("bootstrap must be deterministic per seed")
	}
	if l, h := Bootstrap(nil, 0.95, 100, 1); !math.IsNaN(l) || !math.IsNaN(h) {
		t.Fatal("empty bootstrap must be NaN")
	}
	if l, _ := Bootstrap(xs, 1.5, 100, 1); !math.IsNaN(l) {
		t.Fatal("invalid level must be NaN")
	}
}

func TestMannWhitneyU(t *testing.T) {
	// Clearly separated samples: tiny p.
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{101, 102, 103, 104, 105, 106, 107, 108}
	u, p := MannWhitneyU(a, b)
	if u != 0 {
		t.Fatalf("U = %v, want 0 (a entirely below b)", u)
	}
	if p > 0.01 {
		t.Fatalf("separated samples: p = %v", p)
	}
	// Identical distributions: p near 1.
	_, p = MannWhitneyU(a, a)
	if p < 0.5 {
		t.Fatalf("identical samples: p = %v", p)
	}
	// Symmetry: swapping the samples keeps p.
	_, pa := MannWhitneyU(a, b)
	_, pb := MannWhitneyU(b, a)
	if math.Abs(pa-pb) > 1e-12 {
		t.Fatalf("p not symmetric: %v vs %v", pa, pb)
	}
	// Degenerate inputs.
	if u, p := MannWhitneyU(nil, a); !math.IsNaN(u) || !math.IsNaN(p) {
		t.Fatal("empty sample must be NaN")
	}
	if _, p := MannWhitneyU([]float64{1, 2}, []float64{3, 4}); p != 1 {
		t.Fatalf("underpowered samples must return p=1, got %v", p)
	}
	if _, p := MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Fatalf("all ties must return p=1, got %v", p)
	}
}

func TestMannWhitneyUAgainstReference(t *testing.T) {
	// Reference values computed with scipy.stats.mannwhitneyu
	// (method="asymptotic", use_continuity=True).
	a := []float64{19, 22, 16, 29, 24}
	b := []float64{20, 11, 17, 12}
	u, p := MannWhitneyU(a, b)
	if u != 17 {
		t.Fatalf("U = %v, want 17", u)
	}
	if math.Abs(p-0.11034) > 0.01 {
		t.Fatalf("p = %v, want ~0.110", p)
	}
}
