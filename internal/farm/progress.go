package farm

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// progress is the live sweep reporter: a background ticker printing
// one-line summaries (done/failed/cached/running, throughput, ETA) while
// workers update atomic counters. Wall-clock only ever feeds the report,
// never the results, so progress reporting cannot perturb determinism.
type progress struct {
	w       io.Writer
	name    string
	total   int
	started time.Time
	done    atomic.Int64 // fresh successes
	failed  atomic.Int64
	cached  int64
	active  atomic.Int64
	quit    chan struct{}
	stopped chan struct{}
}

func startProgress(name string, total, cached int, opts Options) *progress {
	p := &progress{
		w:       opts.Progress,
		name:    name,
		total:   total,
		cached: int64(cached),
		//waschedlint:allow nodeterminism progress wall-clock only feeds the live report, never sweep results
		started: time.Now(),
		quit:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	if p.w == nil {
		close(p.stopped)
		return p
	}
	period := opts.ProgressPeriod
	if period <= 0 {
		period = 2 * time.Second
	}
	go func() {
		defer close(p.stopped)
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprintln(p.w, p.line())
			case <-p.quit:
				return
			}
		}
	}()
	return p
}

func (p *progress) running(delta int) { p.active.Add(int64(delta)) }

func (p *progress) finished(out *Outcome) {
	if out.Status == StatusDone {
		p.done.Add(1)
	} else {
		p.failed.Add(1)
	}
}

func (p *progress) line() string {
	done := p.done.Load()
	failed := p.failed.Load()
	finished := done + failed + p.cached
	//waschedlint:allow nodeterminism elapsed time only shapes the ETA line of the live report
	elapsed := time.Since(p.started).Seconds()
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done+failed) / elapsed
	}
	// Unknown ETA (no throughput yet, or a zero-cell sweep) renders n/a
	// rather than an empty duration.
	eta := "n/a"
	if remaining := int64(p.total) - finished; remaining > 0 && rate > 0 {
		eta = (time.Duration(float64(remaining)/rate) * time.Second).Round(time.Second).String()
	}
	return fmt.Sprintf("farm %s: %d/%d done, %d failed, %d cached, %d running | %.2f cells/s, ETA %s",
		p.name, done+p.cached, p.total, failed, p.cached, p.active.Load(), rate, eta)
}

func (p *progress) final(sum *Summary) {
	if p.w == nil {
		return
	}
	state := "complete"
	if sum.Interrupted {
		state = "interrupted"
	}
	//waschedlint:allow nodeterminism the final report line shows wall-clock duration, which never feeds results
	elapsed := time.Since(p.started).Round(time.Millisecond)
	fmt.Fprintf(p.w, "farm %s: %s in %s — %d done (%d cached), %d failed, %d skipped\n",
		p.name, state, elapsed,
		sum.Done, sum.Cached, sum.Failed, sum.Skipped)
}

func (p *progress) stop() {
	select {
	case <-p.stopped:
		return
	default:
	}
	close(p.quit)
	<-p.stopped
}
