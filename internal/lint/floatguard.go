package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"wasched/internal/lint/analysis"
)

// Floatguard flags rate/throughput arithmetic that can mint NaN or Inf —
// the PR 2 bug class where negative node·seconds and NaN rate estimates
// poisoned the two-group split of Eqs. 2–5. Two patterns are reported:
//
//   - a floating-point division whose denominator is not (a) a nonzero
//     constant, (b) compared against a bound anywhere in the enclosing
//     function (the `if d > 0` guard idiom), or (c) fed into one of the
//     clamp helpers (clampRate, clampNonNeg), which absorb NaN;
//   - a raw Rate / MeasuredThroughput field used as an arithmetic operand
//     without being clamped at the point of use or range-checked in the
//     enclosing function — estimates and monitor samples are external
//     inputs, so every use must pass a clamp helper first.
var Floatguard = &analysis.Analyzer{
	Name: "floatguard",
	Doc:  "rate/throughput arithmetic must be guarded or clamped against NaN/Inf",
	Run:  runFloatguard,
}

// clampHelpers absorb invalid values (NaN → 0, out-of-range → bound).
var clampHelpers = map[string]bool{
	"clampRate":   true,
	"clampNonNeg": true,
}

// taintedFields are external-input floats that may carry NaN or negative
// values: job rate estimates and measured file-system throughput.
var taintedFields = map[string]bool{
	"Rate":               true,
	"MeasuredThroughput": true,
}

func runFloatguard(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		parents := analysis.Parents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op == token.QUO {
					checkDivision(pass, parents, e, e.Y)
				}
				if isArithmetic(e.Op) {
					checkTaintedOperand(pass, parents, e.X)
					checkTaintedOperand(pass, parents, e.Y)
				}
			case *ast.AssignStmt:
				switch e.Tok {
				case token.QUO_ASSIGN:
					checkDivision(pass, parents, e, e.Rhs[0])
					checkTaintedOperand(pass, parents, e.Rhs[0])
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
					checkTaintedOperand(pass, parents, e.Rhs[0])
				}
			}
			return true
		})
	}
	return nil
}

func isArithmetic(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
		return true
	}
	return false
}

// checkDivision flags a float division at node whose denominator denom is
// neither constant, guarded, nor clamped.
func checkDivision(pass *analysis.Pass, parents map[ast.Node]ast.Node, node ast.Node, denom ast.Expr) {
	if !isFloat(pass.TypesInfo, denom) {
		return
	}
	if tv, ok := pass.TypesInfo.Types[denom]; ok && tv.Value != nil {
		if v, _ := constant.Float64Val(tv.Value); v != 0 {
			return // nonzero constant denominator
		}
	}
	core := analysis.StripParensAndConversions(pass.TypesInfo, denom)
	text := types.ExprString(core)
	if comparedInFunc(pass.TypesInfo, parents, node, text) {
		return
	}
	if insideClampCall(pass.TypesInfo, parents, node) {
		return
	}
	pass.Reportf(node.Pos(),
		"float division by %s may produce NaN/Inf: guard the denominator (compare it against a bound) or clamp the result", text)
}

// checkTaintedOperand flags a raw tainted field (j.Rate, in.MeasuredThroughput)
// used as an arithmetic operand.
func checkTaintedOperand(pass *analysis.Pass, parents map[ast.Node]ast.Node, operand ast.Expr) {
	sel, ok := ast.Unparen(operand).(*ast.SelectorExpr)
	if !ok || !taintedFields[sel.Sel.Name] || !isFloat(pass.TypesInfo, sel) {
		return
	}
	// Field selections only — method values etc. are not rate estimates.
	if selInfo, ok := pass.TypesInfo.Selections[sel]; ok {
		if selInfo.Kind() != types.FieldVal {
			return
		}
	} else if _, isVar := pass.TypesInfo.Uses[sel.Sel].(*types.Var); !isVar {
		return
	}
	text := types.ExprString(sel)
	if comparedInFunc(pass.TypesInfo, parents, sel, text) {
		return
	}
	if insideClampCall(pass.TypesInfo, parents, sel) {
		return
	}
	pass.Reportf(sel.Pos(),
		"raw %s in arithmetic may carry NaN or a negative estimate: pass it through a clamp helper (clampRate/clampNonNeg) first", text)
}

func isFloat(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// comparedInFunc reports whether the enclosing function contains a
// comparison whose operand (after stripping conversions) prints as text —
// the `if x > 0 { ... }` guard idiom, matched syntactically.
func comparedInFunc(info *types.Info, parents map[ast.Node]ast.Node, n ast.Node, text string) bool {
	body := analysis.FuncBody(analysis.EnclosingFunc(parents, n))
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(m ast.Node) bool {
		if found {
			return false
		}
		be, ok := m.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			side = analysis.StripParensAndConversions(info, side)
			if types.ExprString(side) == text {
				found = true
			}
		}
		return true
	})
	return found
}

// insideClampCall reports whether n sits (transitively, through arithmetic
// and parens) inside an argument of a clamp helper call.
func insideClampCall(info *types.Info, parents map[ast.Node]ast.Node, n ast.Node) bool {
	for p := parents[n]; p != nil; p = parents[p] {
		switch pp := p.(type) {
		case *ast.CallExpr:
			if fn := analysis.CalleeFunc(info, pp); fn != nil && clampHelpers[fn.Name()] {
				return true
			}
			return false
		case *ast.BinaryExpr, *ast.ParenExpr:
			continue
		case ast.Stmt:
			return false
		}
	}
	return false
}
