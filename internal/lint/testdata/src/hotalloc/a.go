// The hotalloc corpus: functions marked //waschedlint:hotpath (and
// everything they reach through package-local calls) must not introduce
// allocations — the static twin of the replay bench's allocs/op gate.
package corpus

import "fmt"

type engine struct {
	slots []int
	heap  []int
	buf   []byte
	names map[int]string
}

// step is the marked hot loop.
//
//waschedlint:hotpath
func (e *engine) step(n int) {
	// Appends rooted in retained fields reuse their backing arrays.
	e.slots = append(e.slots, n)
	e.heap = append(e.heap[:0], e.slots...)

	ids := make([]int, 0, n) // want `make allocates in hot path: step`
	_ = ids

	m := map[int]bool{} // want `map literal allocates in hot path: step`
	_ = m

	s := []int{1, 2, 3} // want `slice literal allocates in hot path: step`
	_ = s

	p := &engine{} // want `&composite literal allocates in hot path: step`
	_ = p

	e.grow(n)

	if n < 0 {
		// Assertion paths may format their last words: no findings here.
		panic(fmt.Sprintf("negative step %d", n))
	}
}

// grow is hot by reachability from step.
func (e *engine) grow(n int) {
	var fresh []int
	for i := 0; i < n; i++ {
		fresh = append(fresh, i) // want `append to a fresh local slice grows in hot path \(reuse a retained buffer\): grow \(hot via step\)`
	}
	_ = fresh
}

// Locals derived from retained storage stay retained.
//
//waschedlint:hotpath
func (e *engine) reuse(src []byte) {
	buf := e.buf[:0]
	buf = append(buf, src...)
	e.buf = buf

	dst := src[:0]
	dst = append(dst, e.buf...)
}

// Closures, conversions, boxing, string concat and go statements.
//
//waschedlint:hotpath
func (e *engine) churn(k int, name string) {
	f := func() int { return k } // want `function literal allocates \(closure\) in hot path: churn`
	_ = f

	b := []byte(name) // want `\[\]byte\(string\) conversion allocates in hot path: churn`
	_ = b

	s := string(e.buf) // want `string\(\[\]byte\) conversion allocates in hot path: churn`
	_ = s

	t := name + "!" // want `string concatenation allocates in hot path: churn`
	_ = t

	go e.grow(k) // want `go statement allocates in hot path: churn`

	sink(k) // want `argument boxed into interface allocates in hot path: churn`

	// Pointer-shaped values fit the iface data word: no allocation.
	sink(e)
	sink(e.names)
}

func sink(v any) { _ = v }

// Unmarked functions not reached from a hot root may allocate freely.
func (e *engine) coldSetup(n int) {
	e.slots = make([]int, 0, n)
	e.names = map[int]string{}
}

// A deliberate hot-path allocation carries its rationale.
//
//waschedlint:hotpath
func (e *engine) deliberate(n int) {
	//waschedlint:allow hotalloc the boundary closure is counted in the bench allocs/op trajectory
	f := func() int { return n }
	_ = f
}

// A token-bucket-shaped tick: the per-interval settle/redistribute pass
// runs once per simulated second, so scratch state must live on the
// limiter, not be rebuilt per tick.

type tokenLimiter struct {
	order  []*tokenBucket
	deltas []float64
	caps   map[string]float64
}

type tokenBucket struct {
	balance float64
	nodes   []string
}

//waschedlint:hotpath
func (l *tokenLimiter) tick() {
	// Retained scratch reused per tick: no findings.
	l.deltas = l.deltas[:0]
	for _, b := range l.order {
		l.deltas = append(l.deltas, b.balance)
	}

	claims := map[*tokenBucket]float64{} // want `map literal allocates in hot path: tick`
	_ = claims

	for _, b := range l.order {
		l.settle(b)
	}
}

// settle is hot by reachability from tick.
func (l *tokenLimiter) settle(b *tokenBucket) {
	var perNode []float64
	for range b.nodes {
		perNode = append(perNode, b.balance) // want `append to a fresh local slice grows in hot path \(reuse a retained buffer\): settle \(hot via tick\)`
	}
	_ = perNode
}
