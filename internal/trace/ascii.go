package trace

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the series as a fixed-size ASCII column chart — the
// terminal stand-in for the panels of the paper's Figs. 3 and 5. Width is
// the number of time buckets, height the number of value rows. Each bucket
// shows the mean of the samples falling into it.
func Plot(s *Series, width, height int) string {
	if width < 8 {
		width = 8
	}
	if height < 2 {
		height = 2
	}
	if s.Len() == 0 {
		return fmt.Sprintf("%s: (no samples)\n", s.Name)
	}
	t0 := s.Times[0]
	t1 := s.Times[s.Len()-1]
	if t1 <= t0 {
		t1 = t0 + 1
	}
	// Bucket means.
	sums := make([]float64, width)
	counts := make([]int, width)
	for i := range s.Times {
		b := int(float64(width) * (s.Times[i] - t0) / (t1 - t0))
		if b >= width {
			b = width - 1
		}
		sums[b] += s.Values[i]
		counts[b]++
	}
	cols := make([]float64, width)
	vmax := 0.0
	for i := range cols {
		if counts[i] > 0 {
			cols[i] = sums[i] / float64(counts[i])
		}
		if cols[i] > vmax {
			vmax = cols[i]
		}
	}
	if vmax == 0 {
		vmax = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s], max %.3g\n", s.Name, s.Unit, vmax)
	for row := height; row >= 1; row-- {
		threshold := vmax * (float64(row) - 0.5) / float64(height)
		fmt.Fprintf(&b, "%8.3g |", vmax*float64(row)/float64(height))
		for _, v := range cols {
			if v >= threshold {
				b.WriteByte('#')
			} else if v > 0 && row == 1 {
				b.WriteByte('.')
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%8s  %-*.4gs%*.4gs\n", "", width/2, t0, width-width/2-1, t1)
	return b.String()
}

// Sparkline renders a one-line summary of the series using block glyphs.
func Sparkline(s *Series, width int) string {
	if width < 4 {
		width = 4
	}
	if s.Len() == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	t0, t1 := s.Times[0], s.Times[s.Len()-1]
	if t1 <= t0 {
		t1 = t0 + 1
	}
	sums := make([]float64, width)
	counts := make([]int, width)
	for i := range s.Times {
		b := int(float64(width) * (s.Times[i] - t0) / (t1 - t0))
		if b >= width {
			b = width - 1
		}
		sums[b] += s.Values[i]
		counts[b]++
	}
	vmax := 0.0
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
		vmax = math.Max(vmax, sums[i])
	}
	if vmax == 0 {
		vmax = 1
	}
	var b strings.Builder
	for _, v := range sums {
		idx := int(v / vmax * float64(len(glyphs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(glyphs) {
			idx = len(glyphs) - 1
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}
