// Monitoring: the observability side of the prototype. Runs a cluster
// under load, injects a mid-run file-system degradation event, and shows
// the three consumers of the monitoring pipeline at work:
//
//  1. the LDMS → SOS counter store (queried directly here),
//
//  2. the analytics service's measured throughput R_now and per-class
//     estimates, and
//
//  3. the canary probe detecting the degradation event.
//
//     go run ./examples/monitoring
package main

import (
	"fmt"
	"log"

	"wasched/internal/canary"
	"wasched/internal/core"
	"wasched/internal/des"
	"wasched/internal/ldms"
	"wasched/internal/pfs"
	"wasched/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Scheduler = core.SchedulerConfig{Policy: core.Adaptive, ThroughputLimit: 20 * pfs.GiB}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A canary probes from the control node (not a compute node).
	var detections []des.Time
	cny, err := canary.Start(sys.Eng, sys.FS, "control", canary.DefaultConfig(), cfg.Seed,
		func(e canary.Event) {
			if e.Degraded {
				detections = append(detections, e.At)
			}
		})
	if err != nil {
		log.Fatal(err)
	}

	// Load: three waves of writers and sleeps.
	specs := workload.Workload1()[:270]
	if err := sys.PretrainIsolated(specs); err != nil {
		log.Fatal(err)
	}
	if err := sys.SubmitAll(specs); err != nil {
		log.Fatal(err)
	}

	// Fault injection: the backend collapses to 4% for 20 minutes.
	sys.Eng.At(des.TimeFromSeconds(2000), "degrade", func() { sys.FS.SetGlobalDegradation(0.04) })
	sys.Eng.At(des.TimeFromSeconds(3200), "heal", func() { sys.FS.SetGlobalDegradation(1) })

	sys.Start()
	if err := sys.RunToCompletion(100 * des.Hour); err != nil {
		log.Fatal(err)
	}

	inEvent, falseAlarms := 0, 0
	for _, at := range detections {
		// Allow one probe interval of detection latency past the heal.
		if at >= des.TimeFromSeconds(2000) && at <= des.TimeFromSeconds(3300) {
			inEvent++
		} else {
			falseAlarms++
		}
	}
	fmt.Printf("makespan                  : %.0f s\n", sys.Makespan().Seconds())
	fmt.Printf("R_now at end of run       : %.2f GiB/s\n", sys.Analytics.CurrentThroughput()/pfs.GiB)
	fmt.Printf("canary probes / flagged   : %d / %d\n", cny.Probes(), cny.Degradations())
	fmt.Printf("  during the fault window : %d\n", inEvent)
	fmt.Printf("  contention false alarms : %d (probes share the file system with jobs)\n", falseAlarms)

	// Raw SOS counters: total bytes each node's Lustre client moved.
	container, _ := sys.Store.Container(ldms.ContainerName)
	fmt.Println("\nper-node client write totals (from the SOS store):")
	for _, node := range sys.Cluster.NodeNames()[:5] {
		rec, ok := container.LastBefore(node, sys.Eng.Now())
		if !ok {
			continue
		}
		fmt.Printf("  %-8s %8.1f GiB over %d samples\n",
			node, rec.Value(ldms.ColWriteBytes)/pfs.GiB,
			len(container.RangeBySource(node, 0, sys.Eng.Now())))
	}

	fmt.Println("\nlearned estimates:")
	for _, fp := range sys.Analytics.Fingerprints() {
		est, _ := sys.Analytics.Estimate(fp)
		fmt.Printf("  %-8s rate %.2f GiB/s, runtime %.0f s, %d observations\n",
			fp, est.Rate/pfs.GiB, est.Runtime.Seconds(), est.Observations)
	}
}
