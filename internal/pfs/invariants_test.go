package pfs

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"wasched/internal/des"
)

// TestRateSolverInvariants fuzzes the solver with random stream sets and
// checks the physical constraints with noise disabled:
//
//  1. no stream exceeds its client cap (with burst credit);
//  2. no volume's streams sum past its bandwidth;
//  3. the aggregate stays within the congestion-degraded server cap;
//  4. with the OSS layer on, no server's streams sum past its bandwidth.
func TestRateSolverInvariants(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	for trial := 0; trial < 60; trial++ {
		eng := des.NewEngine()
		cfg := DefaultConfig()
		cfg.NoiseSigma = 0
		withOSS := trial%2 == 1
		if withOSS {
			cfg.Servers = 4
			cfg.ServerBandwidth = 6 * GiB
		}
		fs, err := New(eng, cfg, uint64(trial))
		if err != nil {
			t.Fatal(err)
		}
		placement := des.NewRNG(uint64(trial), "inv/placement")
		n := 1 + rng.IntN(200)
		streams := make([]*Stream, 0, n)
		for i := 0; i < n; i++ {
			s := fs.StartStream(fmt.Sprintf("n%d", i%15), Write,
				fs.RandomVolume(placement), (1+placement.Float64()*50)*GiB, nil)
			streams = append(streams, s)
		}
		eng.Run(des.TimeFromSeconds(1)) // past MDS creates: all streams active

		volSum := make([]float64, cfg.Volumes)
		srvSum := make([]float64, 5)
		total := 0.0
		for _, s := range streams {
			r := s.Rate()
			if r < 0 {
				t.Fatalf("trial %d: negative rate %g", trial, r)
			}
			if r > cfg.StreamCap*cfg.BurstBoost*1.0001 {
				t.Fatalf("trial %d: stream rate %g exceeds cap", trial, r)
			}
			volSum[s.Volume()] += r
			if withOSS {
				srvSum[s.Volume()%cfg.Servers] += r
			}
			total += r
		}
		for v, sum := range volSum {
			if sum > cfg.VolumeBandwidth*1.0001 {
				t.Fatalf("trial %d: volume %d carries %g > %g", trial, v, sum, cfg.VolumeBandwidth)
			}
		}
		if withOSS {
			for srv, sum := range srvSum[:cfg.Servers] {
				if sum > cfg.ServerBandwidth*1.0001 {
					t.Fatalf("trial %d: server %d carries %g > %g", trial, srv, sum, cfg.ServerBandwidth)
				}
			}
		}
		k := fs.ActiveStreams()
		if k != len(streams) {
			t.Fatalf("trial %d: %d of %d streams active after 1s", trial, k, len(streams))
		}
		eff := 1.0
		if k > cfg.CongestionKnee {
			eff = 1 / (1 + cfg.CongestionPerStream*float64(k-cfg.CongestionKnee))
		}
		if total > cfg.ServerCap*eff*1.0001 {
			t.Fatalf("trial %d: aggregate %g exceeds degraded cap %g (k=%d)",
				trial, total, cfg.ServerCap*eff, k)
		}
	}
}

// TestRateSolverWorkConservation checks that when demand exceeds the
// degraded cap, the solver actually delivers the cap (no artificial
// under-utilisation).
func TestRateSolverWorkConservation(t *testing.T) {
	eng := des.NewEngine()
	cfg := DefaultConfig()
	cfg.NoiseSigma = 0
	cfg.BurstBoost = 1
	fs, _ := New(eng, cfg, 9)
	rng := des.NewRNG(9, "wc")
	const k = 100
	for i := 0; i < k; i++ {
		fs.StartStream("n", Write, fs.RandomVolume(rng), 1e15, nil)
	}
	eng.Run(des.TimeFromSeconds(1))
	eff := 1 / (1 + cfg.CongestionPerStream*float64(k-cfg.CongestionKnee))
	want := cfg.ServerCap * eff
	got := fs.CurrentAggregateRate()
	if got < want*0.999 || got > want*1.001 {
		t.Fatalf("aggregate %g, want the degraded cap %g", got, want)
	}
}
