package schedcheck

import (
	"strings"
	"testing"

	"wasched/internal/trace"
)

// attempt builds one per-attempt trace record of a (possibly requeued)
// job: eligible is when the attempt entered the pending queue, requeued
// marks an attempt that was preempted rather than finishing.
func attempt(id string, n, att int, submit, eligible, start, end float64, requeued bool) trace.JobTrace {
	j := jt(id, n, submit, start, end)
	j.Fingerprint = "class"
	j.Limit = 1000
	j.Eligible = eligible
	j.Attempt = att
	j.Requeued = requeued
	return j
}

// A twin that started while the requeued job was RUNNING its first
// attempt is legitimate: the job was not pending, so nothing jumped it.
func TestClassOrderLegitimateRequeue(t *testing.T) {
	jobs := []trace.JobTrace{
		// job-a: submit 0, runs [10,100), preempted, restarts [200,300).
		attempt("job-a", 2, 1, 0, 0, 10, 100, true),
		attempt("job-a", 2, 2, 0, 100, 200, 300, false),
		// job-b: identical, submitted later, started during a's first run.
		attempt("job-b", 2, 1, 5, 5, 50, 150, false),
	}
	wantClean(t, ValidateJobs(jobs, ValidateOptions{Nodes: 8}))
}

// A twin that started while the requeued job was PENDING again is a
// genuine misorder: backfill can never justify passing over an identical
// job. The old check was skipped entirely on requeue runs, masking this.
func TestClassOrderRequeuedJobJumped(t *testing.T) {
	jobs := []trace.JobTrace{
		// job-a: preempted at 100, pending [100,500) before restarting.
		attempt("job-a", 2, 1, 0, 0, 10, 100, true),
		attempt("job-a", 2, 2, 0, 100, 500, 600, false),
		// job-b: identical, submitted later, started at 200 — inside a's
		// second pending window.
		attempt("job-b", 2, 1, 50, 50, 200, 300, false),
	}
	res := ValidateJobs(jobs, ValidateOptions{Nodes: 8})
	wantViolation(t, res, "fifo-class-order")
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.Detail, "job-b") && strings.Contains(v.Detail, "job-a") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation must name both jobs: %v", res.Violations)
	}
}

// Without requeues the sweep reduces to the classic check: a
// later-submitted identical job must not start first, and traces
// predating the Eligible field (zero value) fall back to Submit.
func TestClassOrderReducesToClassicWithoutRequeues(t *testing.T) {
	a := jt("job-a", 2, 0, 90, 120)
	b := jt("job-b", 2, 10, 30, 60)
	b.Fingerprint, b.Limit = a.Fingerprint, a.Limit
	wantViolation(t, ValidateJobs([]trace.JobTrace{a, b}, ValidateOptions{Nodes: 8}), "fifo-class-order")

	// In submit order everything is fine, including exact ties.
	a2 := jt("job-a", 2, 0, 30, 60)
	b2 := jt("job-b", 2, 10, 30, 120)
	b2.Fingerprint, b2.Limit = a2.Fingerprint, a2.Limit
	wantClean(t, ValidateJobs([]trace.JobTrace{a2, b2}, ValidateOptions{Nodes: 8}))
}

// Attempts of one job never violate against each other even though the
// later attempt starts long after twins queued behind it.
func TestClassOrderSameJobAttemptsDoNotConflict(t *testing.T) {
	jobs := []trace.JobTrace{
		attempt("job-a", 1, 1, 0, 0, 0, 100, true),
		attempt("job-a", 1, 2, 0, 100, 400, 500, false),
		attempt("job-a", 1, 3, 0, 500, 900, 950, false),
	}
	wantClean(t, ValidateJobs(jobs, ValidateOptions{Nodes: 8}))
}

// A systematically misordered class reports at most the cap plus one
// summary line instead of one violation per pair.
func TestClassOrderViolationCap(t *testing.T) {
	var jobs []trace.JobTrace
	// job-00 submitted first but starts last; every later twin jumps it.
	jobs = append(jobs, jt("job-00", 1, 0, 1000, 1100))
	for i := 1; i <= 20; i++ {
		j := jt("job-"+string(rune('a'+i)), 1, float64(i), float64(10*i), float64(10*i+5))
		j.Fingerprint = "job-00"
		j.Limit = jobs[0].Limit
		jobs = append(jobs, j)
	}
	res := ValidateJobs(jobs, ValidateOptions{Nodes: 25})
	count := 0
	for _, v := range res.Violations {
		if v.Invariant == "fifo-class-order" {
			count++
		}
	}
	if count != classOrderViolationCap+1 {
		t.Fatalf("got %d fifo-class-order violations, want cap %d plus summary", count, classOrderViolationCap)
	}
}
