package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"wasched/internal/farm"
)

// fakeReportRegistry builds a tiny registry of instant "experiments" so
// the checkpointed-report machinery can be exercised without running real
// simulations.
func fakeReportRegistry() ([]string, map[string]Entry) {
	names := []string{"alpha", "beta", "gamma"}
	reg := make(map[string]Entry, len(names))
	for _, n := range names {
		reg[n] = Entry{Name: n, Description: n + " section", Run: func(w io.Writer, opts RunOptions) error {
			fmt.Fprintf(w, "%s report seed=%d\n", n, opts.Seed)
			return nil
		}}
	}
	return names, reg
}

// TestReportFromCellsResume: a report interrupted after one section exits
// with ErrInterrupted, and the re-invocation serves the finished section
// from the cache while producing byte-identical output to an uninterrupted
// run.
func TestReportFromCellsResume(t *testing.T) {
	t.Parallel()
	order, reg := fakeReportRegistry()
	opts := RunOptions{Seed: 5}

	ref := &bytes.Buffer{}
	if err := writeReportFromCells(context.Background(), ref, order, reg, opts,
		farm.Options{Workers: 1, StateDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		if !strings.Contains(ref.String(), name+" report seed=5") {
			t.Fatalf("reference report missing section %q:\n%s", name, ref.String())
		}
	}

	dir := t.TempDir()
	var crash bytes.Buffer
	err := writeReportFromCells(context.Background(), &crash, order, reg, opts,
		farm.Options{Workers: 1, StateDir: dir, MaxFresh: 1})
	if !errors.Is(err, farm.ErrInterrupted) {
		t.Fatalf("interrupted report: got %v, want ErrInterrupted", err)
	}
	var resumed bytes.Buffer
	if err := writeReportFromCells(context.Background(), &resumed, order, reg, opts,
		farm.Options{Workers: 1, StateDir: dir}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed.Bytes(), ref.Bytes()) {
		t.Fatalf("resumed report differs from uninterrupted run:\n%s\n----\n%s", resumed.String(), ref.String())
	}
	st, err := farm.ReadStatus(dir, "report")
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 2 || st.Done != len(order) || st.Remaining != 0 {
		t.Fatalf("report journal: %+v", st)
	}
	if st.CacheHits == 0 {
		t.Fatalf("resume should have served cached sections: %+v", st)
	}
}

// TestReportFailedSectionSurfaces: a failing experiment names itself in
// the error instead of vanishing into a generic tally.
func TestReportFailedSectionSurfaces(t *testing.T) {
	t.Parallel()
	order, reg := fakeReportRegistry()
	reg["beta"] = Entry{Name: "beta", Description: "boom", Run: func(io.Writer, RunOptions) error {
		return fmt.Errorf("synthetic failure")
	}}
	var buf bytes.Buffer
	err := writeReportFromCells(context.Background(), &buf, order, reg, RunOptions{Seed: 1},
		farm.Options{Workers: 1, StateDir: t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "beta") || !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("failed section error: %v", err)
	}
}

// TestReportStateDirRejectsCSV: cached sections skip their CSV exporters,
// so the combination is refused up front.
func TestReportStateDirRejectsCSV(t *testing.T) {
	t.Parallel()
	err := WriteFullReport(context.Background(), io.Discard,
		RunOptions{Seed: 1, StateDir: t.TempDir(), CSVDir: t.TempDir()}, nil)
	if err == nil || !strings.Contains(err.Error(), "incompatible") {
		t.Fatalf("state-dir + csv: %v", err)
	}
}

// TestAblationRegistryConsistency: the CLI registry and the "ablations"
// sweep are both derived from AblationGrids, grid for grid.
func TestAblationRegistryConsistency(t *testing.T) {
	t.Parallel()
	grids := AblationGrids()
	if len(grids) == 0 {
		t.Fatal("no ablation grids registered")
	}
	reg := Registry()
	for _, g := range grids {
		e, ok := reg[g.Name]
		if !ok {
			t.Errorf("grid %s missing from experiment registry", g.Name)
			continue
		}
		if e.Description != g.Description {
			t.Errorf("grid %s: registry description %q != grid description %q",
				g.Name, e.Description, g.Description)
		}
	}
	s, ok := Sweeps()["ablations"]
	if !ok {
		t.Fatal("ablations sweep not registered")
	}
	cells := s.Cells(SweepConfig{Seed: 3})
	if len(cells) != len(grids) {
		t.Fatalf("ablations sweep enumerates %d cells for %d grids", len(cells), len(grids))
	}
	for i, c := range cells {
		if c.Config != grids[i].Name || c.Experiment != "ablations" || c.Seed != 3 {
			t.Fatalf("cell %d: %+v does not match grid %s", i, c, grids[i].Name)
		}
	}
}

// TestAblationsSweepReportSynthetic drives the sweep's Report over a
// hand-built summary, so the (expensive) grids themselves never run.
func TestAblationsSweepReportSynthetic(t *testing.T) {
	t.Parallel()
	s := Sweeps()["ablations"]
	cfg := SweepConfig{Seed: 1}
	sum := &farm.Summary{Name: "ablations"}
	for i, c := range s.Cells(cfg) {
		digests := []AblationDigest{
			{Label: c.Config + "/base", Makespan: 1000 + float64(i)},
			{Label: c.Config + "/variant", Makespan: 900 + float64(i), VsBase: -0.1},
		}
		payload, err := json.Marshal(digests)
		if err != nil {
			t.Fatal(err)
		}
		sum.Outcomes = append(sum.Outcomes, farm.Outcome{
			Cell: c, Status: farm.StatusDone, Payload: payload,
		})
		sum.Done++
	}
	var buf bytes.Buffer
	if err := s.Report(&buf, cfg, sum); err != nil {
		t.Fatal(err)
	}
	for _, g := range AblationGrids() {
		if !strings.Contains(buf.String(), "=== "+g.Name+": ") {
			t.Fatalf("report missing grid %s:\n%s", g.Name, buf.String())
		}
		if !strings.Contains(buf.String(), g.Name+"/variant") {
			t.Fatalf("report missing rows of grid %s", g.Name)
		}
	}
	// An incomplete summary must fail loudly, not print a partial report.
	short := &farm.Summary{Name: "ablations", Outcomes: sum.Outcomes[:len(sum.Outcomes)-1], Done: sum.Done - 1}
	if err := s.Report(io.Discard, cfg, short); err == nil {
		t.Fatal("report over an incomplete summary must fail")
	}
}
