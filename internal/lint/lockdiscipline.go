package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"wasched/internal/lint/analysis"
)

// Lockdiscipline flags blocking operations — file I/O, outbound HTTP,
// channel operations, time.Sleep, WaitGroup waits — performed while a
// sync.Mutex or sync.RWMutex is provably held. Holding a fabric lock
// across I/O is how a slow disk or a half-open socket freezes every
// worker behind one coordinator mutex; the chaos drills catch the runtime
// symptom, this analyzer catches the shape.
//
// "Provably held" is a must-analysis over the function's control-flow
// graph: a lock locked on every path into a statement and not yet
// unlocked. Deferred unlocks do not release the lock for the remainder of
// the body (that is precisely the pattern that holds a lock across I/O).
// Calls into package-local helpers inherit the helper's blocking effect
// through the call-graph summaries; calls through interfaces or into
// other packages are not considered blocking — the analyzer prefers
// missed findings over noise. Code launched with `go` inside the critical
// section runs outside it and is skipped.
var Lockdiscipline = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "no blocking call (I/O, HTTP, channel op, sleep) while a mutex is held",
	Run:  runLockdiscipline,
}

// lockFact is the must-held lock set: canonical receiver expression →
// position of the acquiring Lock call.
type lockFact map[string]token.Pos

func runLockdiscipline(pass *analysis.Pass) error {
	cg := analysis.NewCallGraph(pass)
	// blockers maps package functions to the blocking primitive they
	// (transitively) reach, so s.append → journal.Sync chains surface at
	// the call site inside the critical section.
	blockers := cg.Propagate(func(node *analysis.FuncNode) *analysis.Effect {
		var eff *analysis.Effect
		analysis.InspectSync(node.Decl.Body, func(n ast.Node) bool {
			if eff != nil {
				return false
			}
			if desc, pos := blockingOp(pass.TypesInfo, n); desc != "" {
				eff = &analysis.Effect{Cause: desc, Pos: pos}
				return false
			}
			return true
		})
		return eff
	})

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkLockBody(pass, blockers, body)
			return true
		})
	}
	return nil
}

func checkLockBody(pass *analysis.Pass, blockers map[*types.Func]*analysis.Effect, body *ast.BlockStmt) {
	g := analysis.NewCFG(body)
	transfer := func(f lockFact, n ast.Node) lockFact {
		return lockTransfer(pass.TypesInfo, f, n)
	}
	in, seen := analysis.Forward(g, lockFact{}, transfer, intersectLocks, equalLocks)

	for i, blk := range g.Blocks {
		if !seen[i] {
			continue
		}
		fact := in[i]
		for _, node := range blk.Nodes {
			if len(fact) > 0 && !g.SelectComm[node] {
				reportBlocking(pass, blockers, node, fact)
			}
			fact = transfer(fact, node)
		}
	}
}

// lockTransfer updates the held-lock set for one node: Lock/RLock add the
// receiver, Unlock/RUnlock remove it. Deferred statements are skipped (a
// deferred Unlock releases at return, not here) and `go` statements run
// on another goroutine.
func lockTransfer(info *types.Info, f lockFact, n ast.Node) lockFact {
	switch n.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return f
	}
	out := f
	analysis.InspectShallow(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv, method := mutexMethod(info, call)
		if recv == "" {
			return true
		}
		switch method {
		case "Lock", "RLock":
			out = copyLocks(out)
			out[recv] = call.Pos()
		case "Unlock", "RUnlock":
			out = copyLocks(out)
			delete(out, recv)
		}
		return true
	})
	return out
}

// mutexMethod matches m.Lock()/m.Unlock()/m.RLock()/m.RUnlock() where m
// is a sync.Mutex or sync.RWMutex (possibly behind a pointer), returning
// the canonical receiver text and the method name.
func mutexMethod(info *types.Info, call *ast.CallExpr) (recv, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	tv, ok := info.Types[sel.X]
	if !ok || !isSyncMutex(tv.Type) {
		return "", ""
	}
	return types.ExprString(sel.X), sel.Sel.Name
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// reportBlocking reports every blocking operation in node while fact is
// non-empty: direct primitives and calls into package-local helpers whose
// summary blocks.
func reportBlocking(pass *analysis.Pass, blockers map[*types.Func]*analysis.Effect, node ast.Node, fact lockFact) {
	switch node.(type) {
	case *ast.DeferStmt, *ast.GoStmt:
		return
	}
	held := heldLockText(fact)
	analysis.InspectShallow(node, func(m ast.Node) bool {
		if desc, pos := blockingOp(pass.TypesInfo, m); desc != "" {
			pass.Reportf(pos, "%s while %s is held", desc, held)
			return true
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := analysis.CalleeFunc(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		if eff, ok := blockers[callee]; ok {
			chain := callee.Name()
			if len(eff.Chain) > 0 {
				chain += " → " + strings.Join(eff.Chain, " → ")
			}
			pass.Reportf(call.Pos(), "call to %s (which reaches %s) while %s is held", chain, eff.Cause, held)
		}
		return true
	})
}

func heldLockText(fact lockFact) string {
	names := make([]string, 0, len(fact))
	for name := range fact {
		names = append(names, name)
	}
	sort.Strings(names)
	return fmt.Sprintf("%q", names[0])
}

// blockingOp classifies a node as a directly blocking primitive: channel
// operations, default-less selects, sleeps, file and network I/O.
// Interface method calls (an io.Writer, a store) are deliberately not
// classified — the callee is unknown, and flagging every logf under a
// lock would drown the real findings.
func blockingOp(info *types.Info, n ast.Node) (string, token.Pos) {
	switch n := n.(type) {
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", n.Pos()
		}
	case *ast.SendStmt:
		return "channel send", n.Pos()
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "", token.NoPos // has default: non-blocking poll
			}
		}
		return "blocking select", n.Pos()
	case *ast.RangeStmt:
		if tv, ok := info.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				return "range over channel", n.Pos()
			}
		}
	case *ast.CallExpr:
		fn := analysis.CalleeFunc(info, n)
		if fn == nil || fn.Pkg() == nil {
			return "", token.NoPos
		}
		if desc := blockingCallee(fn); desc != "" {
			return "blocking call " + desc, n.Pos()
		}
	}
	return "", token.NoPos
}

// blockingCallee matches the std-library blocking surface the fabric
// actually uses: file I/O, process waits, HTTP, dialing, sleeping.
func blockingCallee(fn *types.Func) string {
	pkg := fn.Pkg().Path()
	name := fn.Name()
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	switch pkg {
	case "time":
		if recv == "" && name == "Sleep" {
			return "time.Sleep"
		}
	case "os":
		if recv == "File" {
			switch name {
			case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync", "Close", "Seek", "Truncate", "ReadDir":
				return "(*os.File)." + name
			}
		}
		if recv == "" {
			switch name {
			case "Open", "OpenFile", "Create", "CreateTemp", "ReadFile", "WriteFile", "Rename", "Remove", "RemoveAll",
				"Mkdir", "MkdirAll", "MkdirTemp", "ReadDir", "Stat", "Lstat", "Truncate", "Chtimes", "Symlink", "Link":
				return "os." + name
			}
		}
	case "net/http":
		if recv == "Client" {
			switch name {
			case "Do", "Get", "Post", "PostForm", "Head", "CloseIdleConnections":
				return "(*http.Client)." + name
			}
		}
		if recv == "" {
			switch name {
			case "Get", "Post", "PostForm", "Head":
				return "http." + name
			}
		}
	case "net":
		if recv == "" {
			switch name {
			case "Dial", "DialTimeout", "Listen", "ListenPacket":
				return "net." + name
			}
		}
	case "os/exec":
		if recv == "Cmd" {
			switch name {
			case "Run", "Output", "CombinedOutput", "Wait", "Start":
				return "(*exec.Cmd)." + name
			}
		}
	case "sync":
		if recv == "WaitGroup" && name == "Wait" {
			return "(*sync.WaitGroup).Wait"
		}
	case "io":
		switch name {
		case "Copy", "CopyN", "ReadAll":
			return "io." + name
		}
	}
	return ""
}

func copyLocks(f lockFact) lockFact {
	out := make(lockFact, len(f)+1)
	for k, v := range f {
		out[k] = v
	}
	return out
}

func intersectLocks(a, b lockFact) lockFact {
	out := lockFact{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

func equalLocks(a, b lockFact) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if _, ok := b[k]; !ok {
			return false
		}
	}
	return true
}
