package lint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"wasched/internal/lint"
	"wasched/internal/lint/analysis"
	"wasched/internal/lint/linttest"
	"wasched/internal/lint/load"
)

func TestNodeterminism(t *testing.T) {
	linttest.Run(t, "testdata/src/nodeterminism", lint.Nodeterminism)
}

func TestMaporder(t *testing.T) {
	linttest.Run(t, "testdata/src/maporder", lint.Maporder)
}

func TestTickerstop(t *testing.T) {
	linttest.Run(t, "testdata/src/tickerstop", lint.Tickerstop)
}

func TestCheckederr(t *testing.T) {
	linttest.Run(t, "testdata/src/checkederr", lint.Checkederr)
}

func TestCtxdeadline(t *testing.T) {
	linttest.Run(t, "testdata/src/ctxdeadline", lint.Ctxdeadline)
}

func TestFloatguard(t *testing.T) {
	linttest.Run(t, "testdata/src/floatguard", lint.Floatguard)
}

func TestLockdiscipline(t *testing.T) {
	linttest.Run(t, "testdata/src/lockdiscipline", lint.Lockdiscipline)
}

func TestGoroleak(t *testing.T) {
	linttest.Run(t, "testdata/src/goroleak", lint.Goroleak)
}

func TestUnitsafe(t *testing.T) {
	linttest.Run(t, "testdata/src/unitsafe", lint.Unitsafe)
}

func TestHotalloc(t *testing.T) {
	linttest.Run(t, "testdata/src/hotalloc", lint.Hotalloc)
}

// TestRepoIsClean is the self-application gate: the shipped tree must lint
// clean under the production suite and scoping — the same invocation as
// `make lint`.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	fset := token.NewFileSet()
	pkgs, err := load.Packages(fset, "../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	diags, err := lint.Check(pkgs, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// TestCheckDeterministic pins the parallel Check's ordering contract:
// two runs over the same load must format to byte-identical findings, so
// CI artifacts and problem-matcher annotations never churn with
// goroutine scheduling.
func TestCheckDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole repository")
	}
	fset := token.NewFileSet()
	pkgs, err := load.Packages(fset, "../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	run := func() string {
		diags, err := lint.Check(pkgs, lint.Suite())
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, d := range diags {
			fmt.Fprintf(&b, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		return b.String()
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d diverged:\n--- first ---\n%s--- run %d ---\n%s", i+2, first, i+2, got)
		}
	}
}

// TestUnknownAnalyzerAllow: an allow naming an analyzer the suite does
// not know suppresses nothing it could ever match, so it is reported —
// the typo would otherwise silently disarm the suppression.
func TestUnknownAnalyzerAllow(t *testing.T) {
	src := `package p

//waschedlint:allow nosuchanalyzer the analyzer name is a typo
var x int
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := load.NewInfo()
	tpkg, err := (&types.Config{}).Check("wasched/internal/p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &load.Package{ImportPath: "wasched/internal/p", Fset: fset, Files: []*ast.File{f}, Pkg: tpkg, Info: info}
	diags, err := lint.Check([]*load.Package{pkg}, lint.Suite())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want exactly the unknown-analyzer finding, got %+v", diags)
	}
	d := diags[0]
	if d.Analyzer != "allowdirective" || !strings.Contains(d.Message, `"nosuchanalyzer"`) {
		t.Fatalf("unexpected finding: %s: %s", d.Analyzer, d.Message)
	}
}

// TestMalformedAllowDirective: an allow without a reason suppresses
// nothing and is itself reported, so every suppression in the tree
// documents its rationale.
func TestMalformedAllowDirective(t *testing.T) {
	src := `package p

func f() {
	//waschedlint:allow nodeterminism
	g()
	//waschedlint:allow
	g()
}

func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows, malformed := analysis.ParseAllows(fset, []*ast.File{f})
	if len(malformed) != 2 {
		t.Fatalf("want 2 malformed-directive findings, got %d", len(malformed))
	}
	for _, d := range malformed {
		if d.Analyzer != "allowdirective" || !strings.Contains(d.Message, "malformed allow directive") {
			t.Fatalf("unexpected malformed finding: %+v", d)
		}
	}
	if len(allows) != 0 {
		t.Fatalf("malformed directives must not suppress anything: %+v", allows)
	}
}

// TestAllowCoverage pins the directive's reach: its own line, the line
// below, the right analyzer — and nothing else.
func TestAllowCoverage(t *testing.T) {
	src := `package p

func f() {
	//waschedlint:allow check reason here
	g()
	g()
}

func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	allows, malformed := analysis.ParseAllows(fset, []*ast.File{f})
	if len(malformed) != 0 || len(allows) != 1 {
		t.Fatalf("parse: allows=%v malformed=%v", allows, malformed)
	}
	if allows[0].Analyzer != "check" || allows[0].Reason != "reason here" {
		t.Fatalf("directive parsed wrong: %+v", allows[0])
	}
	mk := func(line int, analyzer string) analysis.Diagnostic {
		return analysis.Diagnostic{Pos: fset.File(f.Pos()).LineStart(line), Analyzer: analyzer, Message: "m"}
	}
	diags := []analysis.Diagnostic{
		mk(5, "check"), // covered: line below the directive
		mk(6, "check"), // not covered: two lines below
		mk(5, "other"), // not covered: different analyzer
	}
	kept := analysis.Filter(fset, diags, allows)
	if len(kept) != 2 {
		t.Fatalf("want 2 surviving diagnostics, got %d: %+v", len(kept), kept)
	}
}
