package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"wasched/internal/farm"
	"wasched/internal/trace"
	"wasched/internal/workload"
)

// RunOptions parameterise an experiment invocation.
type RunOptions struct {
	// Seed varies the stochastic parts; the same seed reproduces the same
	// report bit for bit.
	Seed uint64
	// CSVDir, when non-empty, receives per-run series and job CSV files
	// (<experiment>-series.csv, <experiment>-jobs.csv).
	CSVDir string
	// Workers bounds the parallelism of multi-run experiments (figure
	// panels, fig4 ladder, fig6 repeats); <= 0 uses GOMAXPROCS. The cell
	// results are identical for any worker count.
	Workers int
	// StateDir, when non-empty, checkpoints the full report experiment by
	// experiment (WriteFullReport): a crashed or cancelled report resumes
	// from the cached sections. Incompatible with CSVDir.
	StateDir string
}

// Runner executes one named experiment, writing a human-readable report.
type Runner func(w io.Writer, opts RunOptions) error

// Entry describes a registered experiment.
type Entry struct {
	Name        string
	Description string
	Run         Runner
}

// Registry returns every runnable experiment, keyed by name. The names
// match DESIGN.md's per-experiment index.
func Registry() map[string]Entry {
	entries := []Entry{
		{"fig3", "paper Fig. 3: Workload 1 under all five scheduler configurations", runFig3All},
		{"fig3a", "paper Fig. 3(a): Workload 1, default Slurm scheduling", figRunner(RunFig3, "a")},
		{"fig3b", "paper Fig. 3(b): Workload 1, I/O-aware 20 GiB/s, pre-trained", figRunner(RunFig3, "b")},
		{"fig3c", "paper Fig. 3(c): Workload 1, I/O-aware 15 GiB/s, pre-trained", figRunner(RunFig3, "c")},
		{"fig3d", "paper Fig. 3(d): Workload 1, adaptive 20 GiB/s, pre-trained", figRunner(RunFig3, "d")},
		{"fig3e", "paper Fig. 3(e): Workload 1, adaptive 20 GiB/s, untrained", figRunner(RunFig3, "e")},
		{"fig4", "paper Fig. 4: throughput vs concurrent write×8 jobs (box plots)", runFig4},
		{"fig5", "paper Fig. 5: Workload 2 under all five scheduler configurations", runFig5All},
		{"fig5a", "paper Fig. 5(a): Workload 2, default Slurm scheduling", figRunner(RunFig5, "a")},
		{"fig5b", "paper Fig. 5(b): Workload 2, I/O-aware 20 GiB/s", figRunner(RunFig5, "b")},
		{"fig5c", "paper Fig. 5(c): Workload 2, I/O-aware 15 GiB/s", figRunner(RunFig5, "c")},
		{"fig5d", "paper Fig. 5(d): Workload 2, adaptive 20 GiB/s", figRunner(RunFig5, "d")},
		{"fig5e", "paper Fig. 5(e): Workload 2, adaptive 15 GiB/s", figRunner(RunFig5, "e")},
		{"fig6", "paper Fig. 6: Workload 2 makespans over repeats (swarm + medians)", runFig6},
	}
	// The ablation grids share one registry with the "ablations" sweep, so
	// a grid added there shows up in both entry points.
	for _, g := range AblationGrids() {
		entries = append(entries, Entry{g.Name, g.Description, ablationRunner(g.Run)})
	}
	m := make(map[string]Entry, len(entries))
	for _, e := range entries {
		m[e.Name] = e
	}
	return m
}

// Names returns the registered experiment names in sorted order.
func Names() []string {
	reg := Registry()
	out := make([]string, 0, len(reg))
	for name := range reg {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func figRunner(run func(string, uint64) (*RunResult, error), key string) Runner {
	return func(w io.Writer, opts RunOptions) error {
		res, err := run(key, opts.Seed)
		if err != nil {
			return err
		}
		printRun(w, res, 0)
		printWarnings(w, res)
		printPanels(w, res)
		return exportCSV(opts.CSVDir, res)
	}
}

// exportCSV writes a run's sampled series and per-job records when a CSV
// directory was requested.
func exportCSV(dir string, res *RunResult) error {
	if dir == "" || res.Recorder == nil {
		return nil // replay-backed rows carry no sampled series
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	slug := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		default:
			return '_'
		}
	}, strings.SplitN(res.Label, ":", 2)[0])
	series, err := os.Create(filepath.Join(dir, slug+"-series.csv"))
	if err != nil {
		return err
	}
	if err := res.Recorder.WriteCSV(series); err != nil {
		series.Close()
		return err
	}
	if err := series.Close(); err != nil {
		return err
	}
	jobs, err := os.Create(filepath.Join(dir, slug+"-jobs.csv"))
	if err != nil {
		return err
	}
	if err := res.Recorder.WriteJobsCSV(jobs); err != nil {
		jobs.Close()
		return err
	}
	return jobs.Close()
}

func runFig3All(w io.Writer, opts RunOptions) error {
	return runFigAll(w, opts, "fig3-panels", "Fig. 3 (Workload 1, 720 jobs)", Fig3Variants(), RunFig3)
}

func runFig5All(w io.Writer, opts RunOptions) error {
	return runFigAll(w, opts, "fig5-panels", "Fig. 5 (Workload 2, 1550 jobs)", Fig5Variants(), RunFig5)
}

func runFigAll(w io.Writer, opts RunOptions, experiment, title string, variants []Variant,
	run func(string, uint64) (*RunResult, error)) error {
	fmt.Fprintf(w, "=== %s ===\n\n", title)
	// The panels are independent simulations: fan them out through the
	// farm (in memory — full recorders are needed for the plots below).
	cells := make([]farm.Cell, len(variants))
	for i, v := range variants {
		cells[i] = farm.Cell{Experiment: experiment, Config: v.Key, Seed: opts.Seed}
	}
	exec := func(_ context.Context, c farm.Cell) (any, error) {
		return run(c.Config, c.Seed)
	}
	sum, err := farm.Run(context.Background(), experiment, cells, exec, farm.Options{Workers: opts.Workers})
	if err != nil {
		return err
	}
	// Report every failed panel, not just the first: a validator rejection
	// in one configuration must not mask another's.
	var errs []error
	results := make([]*RunResult, 0, len(variants))
	for _, o := range sum.Outcomes {
		if o.Status != farm.StatusDone {
			errs = append(errs, fmt.Errorf("panel %s: %s", o.Cell.Config, o.Err))
			continue
		}
		results = append(results, o.Value().(*RunResult))
	}
	if len(errs) > 0 {
		return errors.Join(errs...)
	}
	base := results[0].Makespan
	for _, res := range results {
		if err := exportCSV(opts.CSVDir, res); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "%-45s %12s %9s %6s %9s %10s %8s\n",
		"configuration", "makespan[s]", "vs base", "busy", "tp[GiB/s]", "wait[s]", "bsld")
	for _, res := range results {
		printRun(w, res, base)
	}
	for _, res := range results {
		printWarnings(w, res)
	}
	fmt.Fprintln(w)
	for _, res := range results {
		printPanels(w, res)
	}
	return nil
}

func printRun(w io.Writer, res *RunResult, base float64) {
	vs := "-"
	if base > 0 && res.Makespan != base {
		vs = fmt.Sprintf("%+.1f%%", 100*(res.Makespan-base)/base)
	}
	fmt.Fprintf(w, "%-45s %12.0f %9s %6.2f %9.2f %10.0f %8.1f\n",
		res.Label, res.Makespan, vs, res.MeanBusyNodes, res.MeanThroughput, res.MedianWait,
		res.Sched.MeanBoundedSlowdown)
}

// printWarnings surfaces the run's soft validator findings (hard
// violations already fail the run inside RunWorkload).
func printWarnings(w io.Writer, res *RunResult) {
	for _, v := range res.Invariants.Warnings {
		fmt.Fprintf(w, "warning [%s] %s: %s\n", res.Label, v.Invariant, v.Detail)
	}
}

// printPanels renders the two panels of a Fig. 3/5 plot: Lustre
// throughput (top) and node allocation (bottom), as the paper draws them.
func printPanels(w io.Writer, res *RunResult) {
	fmt.Fprintf(w, "--- %s ---\n", res.Label)
	fmt.Fprint(w, trace.Plot(&res.Recorder.Throughput, 100, 8))
	fmt.Fprint(w, trace.Plot(&res.Recorder.BusyNodes, 100, 5))
	fmt.Fprintln(w)
}

func runFig4(w io.Writer, opts RunOptions) error {
	cfg := DefaultFig4Config()
	cfg.Seed = opts.Seed
	cfg.Farm.Workers = opts.Workers
	points, err := RunFig4(cfg)
	if err != nil {
		return err
	}
	PrintFig4(w, points)
	return nil
}

// PrintFig4 renders the Fig. 4 box-plot table and median bars.
func PrintFig4(w io.Writer, points []Fig4Point) {
	fmt.Fprintln(w, "=== Fig. 4: Lustre total throughput vs concurrent write×8 jobs (GiB/s) ===")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%5s %8s %8s %8s %8s %8s %5s\n", "jobs", "min", "q1", "median", "q3", "max", "n")
	for _, p := range points {
		b := p.Box
		fmt.Fprintf(w, "%5d %8.2f %8.2f %8.2f %8.2f %8.2f %5d\n",
			p.Jobs, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.N)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "medians as bars:")
	maxMed := 0.0
	for _, p := range points {
		if p.Box.Median > maxMed {
			maxMed = p.Box.Median
		}
	}
	for _, p := range points {
		bar := 0
		if maxMed > 0 {
			bar = int(p.Box.Median / maxMed * 60)
		}
		fmt.Fprintf(w, "%3d | %-60s %6.2f\n", p.Jobs, repeat('#', bar), p.Box.Median)
	}
}

func repeat(c byte, n int) string {
	if n <= 0 {
		return ""
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

func runFig6(w io.Writer, opts RunOptions) error {
	rows, err := RunFig6(Fig6Config{Repeats: 5, Seed: opts.Seed,
		Farm: FarmOptions{Workers: opts.Workers}})
	if err != nil {
		return err
	}
	PrintFig6(w, rows)
	return nil
}

// PrintFig6 renders the Fig. 6 summary table.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintln(w, "=== Fig. 6: Workload 2 makespans over repeats (seconds) ===")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-40s %10s %9s %21s %7s %6s  %s\n",
		"configuration", "median", "vs base", "95% CI of median", "p", "busy", "samples")
	for i, r := range rows {
		vs := "-"
		if r.VsBase != 0 {
			vs = fmt.Sprintf("%+.1f%%", 100*r.VsBase)
		}
		pv := "-"
		if i > 0 {
			pv = fmt.Sprintf("%.3f", r.PValue)
		}
		fmt.Fprintf(w, "%-40s %10.0f %9s [%9.0f,%9.0f] %7s %6.2f  ",
			r.Variant.Label, r.Swarm.Median, vs, r.BootLo, r.BootHi, pv, r.MeanBusy)
		for _, v := range r.Swarm.Values {
			fmt.Fprintf(w, "%.0f ", v)
		}
		fmt.Fprintln(w)
	}
}

func ablationRunner(run func(uint64) ([]AblationRow, error)) Runner {
	return func(w io.Writer, opts RunOptions) error {
		rows, err := run(opts.Seed)
		if err != nil {
			return err
		}
		PrintAblation(w, rows)
		for _, r := range rows {
			if err := exportCSV(opts.CSVDir, r.Result); err != nil {
				return err
			}
		}
		return nil
	}
}

// PrintAblation renders an ablation comparison table. It goes through the
// digest form so the standalone runner and the cached "ablations" sweep
// print identical tables.
func PrintAblation(w io.Writer, rows []AblationRow) {
	PrintAblationDigests(w, DigestAblation(rows))
}

// WorkloadSizes reports the job counts of the standard workloads (sanity
// output for the CLI).
func WorkloadSizes() string {
	return fmt.Sprintf("workload1=%d jobs, workload2=%d jobs, mixed=%d jobs",
		len(workload.Workload1()), len(workload.Workload2()), len(workload.Mixed()))
}
