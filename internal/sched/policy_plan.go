package sched

import (
	"fmt"
	"math"

	"wasched/internal/des"
	"wasched/internal/restrack"
)

// PlanPolicy is the plan-based burst-buffer co-scheduling policy after
// Kopanski/Rzadca ("Plan-based Job Scheduling for Supercomputers with
// Shared Burst Buffers"): every backfill pass builds a greedy future plan
// that co-reserves compute nodes AND shared burst-buffer capacity, so a
// job whose BB demand does not fit now receives a future reservation
// instead of a doomed start-now decision. The simulated-annealing search
// of the original is replaced by the greedy first-fit plan the backfill
// engine already implements — the paper's own baseline variant — which
// keeps the policy compatible with the incremental Session path.
//
// The BB profile models reservations over [start, start+Limit) only; the
// post-completion drain holds capacity a little longer, and the executor's
// admission check (internal/slurm, internal/schedcheck replay) covers that
// window by deferring starts that do not fit the live occupancy.
type PlanPolicy struct {
	// TotalNodes is the cluster size N.
	TotalNodes int
	// BBCapacity is the shared burst-buffer pool size in bytes. Jobs
	// demanding more than this can never run and are reported infeasible.
	BBCapacity float64
	// ThroughputLimit optionally co-reserves PFS bandwidth exactly as
	// IOAwarePolicy does; zero plans nodes + burst buffer only.
	ThroughputLimit float64
	// Horizon bounds the lookahead window: jobs whose planned start would
	// fall after Now+Horizon are skipped this round instead of reserved.
	// Zero means unbounded (plan the whole queue).
	Horizon des.Duration
	// IgnoreMeasured disables the measured-throughput guard (only
	// meaningful with a ThroughputLimit; ablation only).
	IgnoreMeasured bool
}

// Name implements Policy.
func (p PlanPolicy) Name() string { return "plan" }

func (p PlanPolicy) validate() {
	if p.TotalNodes <= 0 {
		panic(fmt.Sprintf("sched: PlanPolicy.TotalNodes must be positive, got %d", p.TotalNodes))
	}
	if p.BBCapacity < 0 || math.IsNaN(p.BBCapacity) {
		panic(fmt.Sprintf("sched: PlanPolicy.BBCapacity must be non-negative, got %g", p.BBCapacity))
	}
	if p.ThroughputLimit < 0 || math.IsNaN(p.ThroughputLimit) {
		panic(fmt.Sprintf("sched: PlanPolicy.ThroughputLimit must be non-negative, got %g", p.ThroughputLimit))
	}
	if p.Horizon < 0 {
		panic(fmt.Sprintf("sched: PlanPolicy.Horizon must be non-negative, got %d", p.Horizon))
	}
}

// clampRate caps a job's estimated rate at the throughput limit (same
// semantics as IOAwarePolicy.clampRate; only used when ThroughputLimit>0).
func (p PlanPolicy) clampRate(r float64) float64 {
	if r > p.ThroughputLimit {
		return p.ThroughputLimit
	}
	if r < 0 || math.IsNaN(r) {
		return 0
	}
	return r
}

// NewRound implements Policy: node tracker + BB byte tracker (+ optional
// throughput tracker), all seeded with the running set's reservations.
func (p PlanPolicy) NewRound(in RoundInput) Round {
	p.validate()
	nt := restrack.NewNodeTracker(p.TotalNodes)
	if in.UnavailableNodes > 0 {
		nt.Reserve(in.Now, des.MaxTime, in.UnavailableNodes)
	}
	bt := restrack.NewBandwidthTracker(p.BBCapacity)
	var lt *restrack.BandwidthTracker
	if p.ThroughputLimit > 0 {
		lt = restrack.NewBandwidthTracker(p.ThroughputLimit)
	}
	sumRunning := 0.0
	maxEnd := in.Now
	for _, j := range in.Running {
		end := j.StartedAt.Add(j.Limit)
		nt.Reserve(in.Now, end, j.Nodes)
		bt.Reserve(in.Now, end, clampNonNeg(j.BBBytes))
		if lt != nil {
			r := p.clampRate(j.Rate)
			lt.Reserve(in.Now, end, r)
			sumRunning += r
		}
		if end > maxEnd {
			maxEnd = end
		}
	}
	if lt != nil && !p.IgnoreMeasured && in.MeasuredThroughput > sumRunning {
		end := maxEnd
		if len(in.Running) == 0 {
			end = in.Now.Add(MeasuredResidualHorizon)
		}
		lt.Reserve(in.Now, end, in.MeasuredThroughput-sumRunning)
	}
	return &planRound{p: p, nt: nt, bt: bt, lt: lt, horizon: planHorizon(p.Horizon, in.Now)}
}

// planHorizon resolves the lookahead cutoff for a round.
func planHorizon(h des.Duration, now des.Time) des.Time {
	if h <= 0 {
		return des.MaxTime
	}
	return now.Add(h)
}

type planRound struct {
	p       PlanPolicy
	nt      *restrack.NodeTracker
	bt      *restrack.BandwidthTracker
	lt      *restrack.BandwidthTracker // nil without a ThroughputLimit
	horizon des.Time
}

// EarliestStart alternates node, burst-buffer and (optionally) throughput
// fits until all constraints hold at the same instant — the same fixpoint
// iteration Algorithm 4 uses for two resources, extended to three. A
// feasible start beyond the lookahead horizon reports infeasible: the
// backfill engine then skips the job without burning backfill budget, and
// the job is re-planned next round.
func (r *planRound) EarliestStart(j *Job, tmin des.Time) (des.Time, bool) {
	if j.Nodes > r.nt.Total() {
		return des.MaxTime, false
	}
	demand := clampNonNeg(j.BBBytes)
	if demand > r.bt.Limit() {
		return des.MaxTime, false
	}
	rate := 0.0
	if r.lt != nil {
		rate = r.p.clampRate(j.Rate)
	}
	t := tmin
	for {
		tNT, ok := r.nt.EarliestFit(t, j.Limit, j.Nodes)
		if !ok {
			return des.MaxTime, false
		}
		tBB, ok := r.bt.EarliestFit(tNT, j.Limit, demand)
		if !ok {
			return des.MaxTime, false
		}
		if tBB != tNT {
			t = tBB
			continue
		}
		if r.lt == nil {
			if tBB > r.horizon {
				return des.MaxTime, false
			}
			return tBB, true
		}
		tLT, ok := r.lt.EarliestFit(tBB, j.Limit, rate)
		if !ok {
			return des.MaxTime, false
		}
		if tLT == tBB {
			if tLT > r.horizon {
				return des.MaxTime, false
			}
			return tLT, true
		}
		t = tLT
	}
}

// Reserve commits nodes, burst-buffer bytes and (optionally) bandwidth.
func (r *planRound) Reserve(j *Job, t des.Time) {
	end := t.Add(j.Limit)
	r.nt.Reserve(t, end, j.Nodes)
	r.bt.Reserve(t, end, clampNonNeg(j.BBBytes))
	if r.lt != nil {
		r.lt.Reserve(t, end, r.p.clampRate(j.Rate))
	}
}

// Diagnostics implements Diagnoser.
func (r *planRound) Diagnostics() map[string]float64 {
	return map[string]float64{
		"bb_capacity": r.p.BBCapacity,
		"limit":       r.p.ThroughputLimit,
	}
}

// BBAwarePolicy is the opt-in burst-buffer hook for existing policies: it
// layers a shared-BB reservation profile over any inner policy's round, so
// the inner policy's backfill reservations (nodes, bandwidth, adaptive
// target, Tetris ordering via its inner) additionally respect BB capacity.
// Unlike PlanPolicy it has no lookahead horizon of its own — the inner
// policy's semantics are preserved, only constrained.
type BBAwarePolicy struct {
	// Inner is the wrapped policy.
	Inner Policy
	// Capacity is the shared burst-buffer pool size in bytes.
	Capacity float64
}

// Name implements Policy.
func (p BBAwarePolicy) Name() string { return "bb+" + p.Inner.Name() }

func (p BBAwarePolicy) validate() {
	if p.Inner == nil {
		panic("sched: BBAwarePolicy needs an inner policy")
	}
	if p.Capacity < 0 || math.IsNaN(p.Capacity) {
		panic(fmt.Sprintf("sched: BBAwarePolicy.Capacity must be non-negative, got %g", p.Capacity))
	}
}

// NewRound implements Policy: the inner round plus a BB byte tracker
// seeded with the running set.
func (p BBAwarePolicy) NewRound(in RoundInput) Round {
	p.validate()
	inner := p.Inner.NewRound(in)
	bt := restrack.NewBandwidthTracker(p.Capacity)
	for _, j := range in.Running {
		bt.Reserve(in.Now, j.StartedAt.Add(j.Limit), clampNonNeg(j.BBBytes))
	}
	return &bbAwareRound{inner: inner, bt: bt}
}

// OrderWindow implements WindowOrderer by delegating to the inner policy
// when it is one (e.g. Tetris); otherwise the window order is untouched.
func (p BBAwarePolicy) OrderWindow(in RoundInput, window []*Job) {
	if o, ok := p.Inner.(WindowOrderer); ok {
		o.OrderWindow(in, window)
	}
}

type bbAwareRound struct {
	inner Round
	bt    *restrack.BandwidthTracker
}

// EarliestStart alternates the inner policy's fit with the BB fit until
// both agree.
func (r *bbAwareRound) EarliestStart(j *Job, tmin des.Time) (des.Time, bool) {
	demand := clampNonNeg(j.BBBytes)
	if demand > r.bt.Limit() {
		return des.MaxTime, false
	}
	t := tmin
	for {
		tIn, ok := r.inner.EarliestStart(j, t)
		if !ok {
			return des.MaxTime, false
		}
		tBB, ok := r.bt.EarliestFit(tIn, j.Limit, demand)
		if !ok {
			return des.MaxTime, false
		}
		if tBB == tIn {
			return tBB, true
		}
		t = tBB
	}
}

// Reserve commits the inner reservation plus the BB bytes.
func (r *bbAwareRound) Reserve(j *Job, t des.Time) {
	r.inner.Reserve(j, t)
	r.bt.Reserve(t, t.Add(j.Limit), clampNonNeg(j.BBBytes))
}

// Diagnostics implements Diagnoser, passing the inner round's diagnostics
// through so adaptive/two-group internals stay visible under the wrapper.
func (r *bbAwareRound) Diagnostics() map[string]float64 {
	if d, ok := r.inner.(Diagnoser); ok {
		return d.Diagnostics()
	}
	return nil
}
