package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseOne(t testing.TB, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

// TestParseAllows pins the directive grammar: analyzer and reason are both
// mandatory, the reason keeps its internal spacing, trailing comments
// attach to their own line, and near-miss spellings are not directives.
func TestParseAllows(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// wantAllows is (analyzer, reason) pairs in order.
		wantAllows [][2]string
		// wantMalformed counts diagnostics; every one must carry the
		// pseudo-analyzer and the grammar hint.
		wantMalformed int
	}{
		{
			name: "well-formed standalone",
			src: `package p
//waschedlint:allow maporder iteration feeds a histogram, order-free
var x int
`,
			wantAllows: [][2]string{{"maporder", "iteration feeds a histogram, order-free"}},
		},
		{
			name: "trailing comment",
			src: `package p
var x = f() //waschedlint:allow checkederr best-effort close
func f() int { return 0 }
`,
			wantAllows: [][2]string{{"checkederr", "best-effort close"}},
		},
		{
			name: "missing reason",
			src: `package p
//waschedlint:allow maporder
var x int
`,
			wantMalformed: 1,
		},
		{
			name: "missing analyzer and reason",
			src: `package p
//waschedlint:allow
var x int
`,
			wantMalformed: 1,
		},
		{
			name: "leading space after slashes",
			src: `package p
// waschedlint:allow maporder spaced form still parses
var x int
`,
			wantAllows: [][2]string{{"maporder", "spaced form still parses"}},
		},
		{
			name: "near-miss prefix is not a directive",
			src: `package p
//waschedlint:allowmaporder smashed together
//waschedlint:hotpath
var x int
`,
		},
		{
			name: "multiple directives keep file order",
			src: `package p
//waschedlint:allow a first
var x int
//waschedlint:allow b second one
var y int
`,
			wantAllows: [][2]string{{"a", "first"}, {"b", "second one"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fset, files := parseOne(t, tc.src)
			allows, malformed := ParseAllows(fset, files)
			if len(allows) != len(tc.wantAllows) {
				t.Fatalf("allows = %+v, want %d", allows, len(tc.wantAllows))
			}
			for i, want := range tc.wantAllows {
				if allows[i].Analyzer != want[0] || allows[i].Reason != want[1] {
					t.Errorf("allow[%d] = %q %q, want %q %q", i, allows[i].Analyzer, allows[i].Reason, want[0], want[1])
				}
				if allows[i].Line <= 0 || allows[i].File == "" || !allows[i].Pos.IsValid() {
					t.Errorf("allow[%d] has no usable position: %+v", i, allows[i])
				}
			}
			if len(malformed) != tc.wantMalformed {
				t.Fatalf("malformed = %+v, want %d", malformed, tc.wantMalformed)
			}
			for _, d := range malformed {
				if d.Analyzer != "allowdirective" {
					t.Errorf("malformed finding attributed to %q, want allowdirective", d.Analyzer)
				}
				if !strings.Contains(d.Message, "<analyzer> <reason>") {
					t.Errorf("malformed finding does not explain the grammar: %q", d.Message)
				}
			}
		})
	}
}

// TestParseAllowsDirectiveLine pins that a trailing directive suppresses
// on its own source line: Filter covers the directive's line and the one
// below, so the parsed Line must be the comment's physical line.
func TestParseAllowsDirectiveLine(t *testing.T) {
	src := `package p

var x = 1 //waschedlint:allow check on line three
`
	fset, files := parseOne(t, src)
	allows, malformed := ParseAllows(fset, files)
	if len(malformed) != 0 || len(allows) != 1 {
		t.Fatalf("allows=%v malformed=%v", allows, malformed)
	}
	if allows[0].Line != 3 {
		t.Fatalf("directive line = %d, want 3", allows[0].Line)
	}
}

// FuzzParseAllows feeds arbitrary Go sources through the directive parser
// and checks its invariants: parsed directives always carry a non-empty
// analyzer, a non-empty reason and a positive line; malformed ones are
// always attributed to the allowdirective pseudo-analyzer; and a
// directive never lands in both buckets.
func FuzzParseAllows(f *testing.F) {
	f.Add("package p\n//waschedlint:allow maporder reason text\nvar x int\n")
	f.Add("package p\n//waschedlint:allow maporder\nvar x int\n")
	f.Add("package p\nvar x = 1 //waschedlint:allow a b c d\n")
	f.Add("package p\n//waschedlint:allow\n//waschedlint:allow  \t two  spaced\n")
	f.Add("package p\n/*waschedlint:allow block comment form*/\nvar x int\n")
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip() // not a parsable Go file; the parser never sees it
		}
		allows, malformed := ParseAllows(fset, []*ast.File{file})
		directives := 0
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest := strings.TrimPrefix(text, AllowPrefix)
				if len(rest) < len(text) && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
					directives++
				}
			}
		}
		if got := len(allows) + len(malformed); got > directives {
			t.Fatalf("%d findings from %d directive comments", got, directives)
		}
		for _, a := range allows {
			if a.Analyzer == "" {
				t.Fatalf("allow with empty analyzer: %+v", a)
			}
			if strings.TrimSpace(a.Reason) == "" {
				t.Fatalf("allow with blank reason: %+v", a)
			}
			if a.Line <= 0 || a.File == "" {
				t.Fatalf("allow with no position: %+v", a)
			}
		}
		for _, d := range malformed {
			if d.Analyzer != "allowdirective" {
				t.Fatalf("malformed finding attributed to %q: %+v", d.Analyzer, d)
			}
			if !d.Pos.IsValid() {
				t.Fatalf("malformed finding with no position: %+v", d)
			}
		}
	})
}
