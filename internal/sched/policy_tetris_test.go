package sched

import (
	"testing"
)

func TestTetrisName(t *testing.T) {
	p := TetrisPolicy{Inner: NodePolicy{TotalNodes: 4}, TotalNodes: 4}
	if p.Name() != "tetris+default" {
		t.Fatalf("name: %s", p.Name())
	}
}

func TestTetrisPanics(t *testing.T) {
	for i, p := range []TetrisPolicy{
		{Inner: nil, TotalNodes: 4},
		{Inner: NodePolicy{TotalNodes: 4}, TotalNodes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d must panic", i)
				}
			}()
			p.NewRound(RoundInput{})
		}()
	}
}

func TestTetrisOrderWindowPrefersAlignedJobs(t *testing.T) {
	p := TetrisPolicy{
		Inner:           IOAwarePolicy{TotalNodes: 10, ThroughputLimit: 10},
		TotalNodes:      10,
		ThroughputLimit: 10,
	}
	// Running jobs consume most of the bandwidth but few nodes: nodes are
	// plentiful, bandwidth scarce → node-heavy/IO-light jobs align best.
	r1 := iojob("r1", 1, 100*sec, 8)
	r1.StartedAt = 0
	in := RoundInput{Now: tsec(10), Running: []*Job{r1}}
	ioHeavy := iojob("io", 1, 50*sec, 9)
	nodeHeavy := iojob("cpu", 6, 50*sec, 0)
	window := []*Job{ioHeavy, nodeHeavy}
	p.OrderWindow(in, window)
	if window[0] != nodeHeavy {
		t.Fatalf("node-heavy job must come first when bandwidth is scarce: %v", ids(window))
	}

	// Flip the scarcity: running jobs consume most nodes, no bandwidth.
	r2 := iojob("r2", 9, 100*sec, 0)
	r2.StartedAt = 0
	in = RoundInput{Now: tsec(10), Running: []*Job{r2}}
	window = []*Job{nodeHeavy, ioHeavy}
	p.OrderWindow(in, window)
	if window[0] != ioHeavy {
		t.Fatalf("io-heavy job must come first when nodes are scarce: %v", ids(window))
	}
}

func TestTetrisOrderIsStableOnTies(t *testing.T) {
	p := TetrisPolicy{Inner: NodePolicy{TotalNodes: 4}, TotalNodes: 4}
	a := job("a", 1, 10*sec)
	b := job("b", 1, 10*sec)
	c := job("c", 1, 10*sec)
	window := []*Job{a, b, c}
	p.OrderWindow(RoundInput{}, window)
	if window[0] != a || window[1] != b || window[2] != c {
		t.Fatalf("ties must keep queue order: %v", ids(window))
	}
}

func TestTetrisRunRoundReordersOnlyWindow(t *testing.T) {
	p := TetrisPolicy{
		Inner:           IOAwarePolicy{TotalNodes: 4, ThroughputLimit: 10},
		TotalNodes:      4,
		ThroughputLimit: 10,
	}
	// Bandwidth nearly exhausted by a running job; a queue with an
	// IO-heavy job first. TETRIS reorders so the CPU job is examined (and
	// started) first; under FIFO the IO job would be first and would
	// reserve, not start.
	r1 := iojob("r1", 1, 100*sec, 9)
	r1.StartedAt = 0
	ioJob := iojob("io", 1, 50*sec, 5)
	cpuJob := iojob("cpu", 2, 50*sec, 0)
	in := RoundInput{Now: tsec(10), Running: []*Job{r1}, Waiting: []*Job{ioJob, cpuJob}}
	ds, _ := RunRound(p, in, Options{})
	if ds[0].Job != cpuJob || !ds[0].StartNow {
		t.Fatalf("tetris must examine the cpu job first: %+v", ds)
	}
	// The caller's queue slice must be untouched.
	if in.Waiting[0] != ioJob {
		t.Fatal("RunRound must not mutate the caller's queue")
	}
}

func TestTetrisHonoursMaxJobTest(t *testing.T) {
	p := TetrisPolicy{Inner: NodePolicy{TotalNodes: 1}, TotalNodes: 1}
	var waiting []*Job
	for i := 0; i < 10; i++ {
		waiting = append(waiting, job(string(rune('a'+i)), 1, 10*sec))
	}
	ds, _ := RunRound(p, RoundInput{Waiting: waiting}, Options{MaxJobTest: 4})
	if len(ds) != 4 {
		t.Fatalf("examined %d, want 4", len(ds))
	}
}
