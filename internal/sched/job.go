// Package sched implements multi-resource backfill scheduling: the Slurm
// backfill algorithm (paper Algorithm 1) as a policy-parameterised engine,
// with policies for node-only scheduling (default Slurm), I/O-aware
// scheduling (paper Algorithms 2–4) and workload-adaptive scheduling with
// the two-group approximation (paper Algorithms 5–7, Equations 1–5).
//
// The package is pure scheduling logic: it never touches the simulator or
// the analytics service. The controller (internal/slurm) assembles a
// RoundInput — queue order, per-job estimates, measured throughput — and
// applies the decisions.
package sched

import (
	"sort"

	"wasched/internal/des"
)

// Job is the scheduler's view of one job. The controller fills the
// identity and request fields at submission and refreshes the estimate
// fields from the analytics service before every scheduling round.
type Job struct {
	// ID is the unique job identifier.
	ID string
	// Fingerprint identifies the job's class for estimation purposes.
	Fingerprint string
	// Nodes is the requested node count n_j.
	Nodes int
	// Limit is the user-requested runtime limit L_j; reservations are
	// held for this long regardless of estimates.
	Limit des.Duration
	// Submit is the submission time s_j (queue-order tiebreak).
	Submit des.Time
	// Priority orders the queue (higher first); equal priorities fall
	// back to FIFO by Submit, then ID.
	Priority int64

	// StartedAt is the start time b_j; meaningful for running jobs only.
	StartedAt des.Time

	// Rate is the estimated average Lustre throughput r_j in bytes/s.
	// Zero for jobs with no estimate (the paper's "untrained" case).
	Rate float64
	// EstRuntime is the estimated runtime d_j. Zero means no estimate;
	// policies fall back to Limit.
	EstRuntime des.Duration

	// BBBytes is the job's burst-buffer reservation request in bytes
	// (Kopanski/Rzadca's shared burst-buffer model). Zero for jobs that
	// use no burst buffer; only BB-aware policies (PlanPolicy,
	// BBAwarePolicy) read it.
	BBBytes float64
}

// estRuntime returns d_j, falling back to the requested limit when the
// analytics has no estimate.
func (j *Job) estRuntime() des.Duration {
	if j.EstRuntime > 0 {
		return j.EstRuntime
	}
	return j.Limit
}

// remaining returns the estimated remaining runtime of a running job at
// time now: max(0, b_j + d_j − now).
func (j *Job) remaining(now des.Time) des.Duration {
	end := j.StartedAt.Add(j.estRuntime())
	if end <= now {
		return 0
	}
	return end.Sub(now)
}

// SortQueue orders waiting jobs by descending priority, then FIFO by
// submit time, then by ID for total determinism (Algorithm 1 line 2).
func SortQueue(waiting []*Job) {
	sort.SliceStable(waiting, func(a, b int) bool {
		ja, jb := waiting[a], waiting[b]
		if ja.Priority != jb.Priority {
			return ja.Priority > jb.Priority
		}
		if ja.Submit != jb.Submit {
			return ja.Submit < jb.Submit
		}
		return ja.ID < jb.ID
	})
}

// RoundInput is everything a policy sees at the start of a scheduling
// round: the running set R, the waiting queue Q (already sorted), the
// current time, and the measured file-system throughput R_now.
type RoundInput struct {
	Now                des.Time
	Running            []*Job
	Waiting            []*Job
	MeasuredThroughput float64
	// UnavailableNodes counts nodes that are down/drained: the node
	// tracker reserves them for the whole horizon.
	UnavailableNodes int
}

// Round is one scheduling round's reservation state. EarliestStart and
// Reserve correspond to the EarliestStartTime and ReserveResources
// procedures of the paper's algorithms.
type Round interface {
	// EarliestStart returns the earliest time not earlier than tmin at
	// which all resources required by j are available for L_j. ok is
	// false when no such time exists under the policy's limits.
	EarliestStart(j *Job, tmin des.Time) (t des.Time, ok bool)
	// Reserve commits j's resources starting at t for L_j.
	Reserve(j *Job, t des.Time)
}

// Policy builds the reservation trackers for a scheduling round
// (InitializeReservationTracker in Algorithms 1, 2 and 5).
type Policy interface {
	NewRound(in RoundInput) Round
	// Name identifies the policy in traces and reports.
	Name() string
}

// Diagnoser is an optional Round interface exposing per-round internals
// (adaptive target, two-group threshold, ...) for traces and experiments.
type Diagnoser interface {
	Diagnostics() map[string]float64
}
