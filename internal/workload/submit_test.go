package workload

import (
	"testing"

	"wasched/internal/cluster"
	"wasched/internal/des"
	"wasched/internal/slurm"
)

func sleepSpecs(n int) []slurm.JobSpec {
	specs := make([]slurm.JobSpec, n)
	for i := range specs {
		specs[i] = slurm.JobSpec{
			Name: "s", Nodes: 1, Limit: 200 * des.Second,
			Program: cluster.SleepProgram{D: 10 * des.Second},
		}
	}
	return specs
}

func TestSubmitAllEmpty(t *testing.T) {
	_, ctl := feederRig(t)
	recs, err := SubmitAll(ctl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || ctl.QueueLength() != 0 {
		t.Fatalf("empty workload: %d records, queue %d", len(recs), ctl.QueueLength())
	}
}

func TestSubmitTimedDuplicateTimes(t *testing.T) {
	// Every job shares one submission instant (the paper's batch protocol
	// expressed as timed specs). All must enter the queue, in spec order.
	eng, ctl := feederRig(t)
	specs := sleepSpecs(12)
	if err := SubmitTimed(ctl, Timed(specs, des.TimeFromSeconds(5))); err != nil {
		t.Fatal(err)
	}
	if ctl.QueueLength() != 0 {
		t.Fatalf("queue %d before the submission instant", ctl.QueueLength())
	}
	eng.Run(des.TimeFromSeconds(5))
	if ctl.QueueLength() != len(specs) {
		t.Fatalf("queue %d at the submission instant, want %d", ctl.QueueLength(), len(specs))
	}
	ctl.Run()
	eng.Run(des.TimeFromSeconds(3600))
	if ctl.DoneCount() != len(specs) {
		t.Fatalf("done: %d, want %d", ctl.DoneCount(), len(specs))
	}
}

func TestSubmitPoissonBurstAtZero(t *testing.T) {
	// A near-zero mean collapses the exponential gaps so that (almost)
	// every arrival lands at t=0 — the degenerate burst. Nothing may panic
	// (scheduling in the past is a causality violation the engine rejects)
	// and every job must run.
	eng, ctl := feederRig(t)
	specs := sleepSpecs(20)
	rng := des.NewRNG(1, "poisson-burst")
	if err := SubmitPoisson(ctl, specs, des.Duration(1), rng); err != nil {
		t.Fatal(err)
	}
	ctl.Run()
	eng.Run(des.TimeFromSeconds(3600))
	if ctl.DoneCount() != len(specs) {
		t.Fatalf("done: %d, want %d", ctl.DoneCount(), len(specs))
	}
}

func TestSubmitPoissonRejectsNonPositiveMean(t *testing.T) {
	_, ctl := feederRig(t)
	rng := des.NewRNG(1, "poisson")
	if err := SubmitPoisson(ctl, sleepSpecs(1), 0, rng); err == nil {
		t.Fatal("zero mean must fail")
	}
	if err := SubmitPoisson(ctl, sleepSpecs(1), -des.Second, rng); err == nil {
		t.Fatal("negative mean must fail")
	}
}
