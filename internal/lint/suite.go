package lint

import (
	"strings"

	"wasched/internal/lint/analysis"
	"wasched/internal/lint/load"
)

// ScopedAnalyzer binds an analyzer to the import paths it guards. The
// analyzers themselves are scope-free (so their golden corpora run on
// synthetic packages); the suite decides where each invariant applies.
type ScopedAnalyzer struct {
	Analyzer *analysis.Analyzer
	// Include lists import-path prefixes the analyzer runs on; empty
	// means every package handed to Check.
	Include []string
	// Exclude lists import-path prefixes carved out of Include.
	Exclude []string
}

func (sa ScopedAnalyzer) applies(importPath string) bool {
	for _, e := range sa.Exclude {
		if hasPathPrefix(importPath, e) {
			return false
		}
	}
	if len(sa.Include) == 0 {
		return true
	}
	for _, p := range sa.Include {
		if hasPathPrefix(importPath, p) {
			return true
		}
	}
	return false
}

func hasPathPrefix(path, prefix string) bool {
	return path == prefix || strings.HasPrefix(path, prefix+"/")
}

// Suite returns the waschedlint analyzer suite with this repository's
// scoping. Rationale per analyzer:
//
//   - nodeterminism guards everything that runs inside (or feeds) the
//     simulation. internal/experiments and the CLIs are orchestration —
//     wall-clock progress reporting there is legitimate — but internal/farm
//     is included even though it is orchestration too: its cells promise
//     bit-identical replay, so its deliberate wall-clock uses (journal
//     timestamps, ETAs) must each carry an allow rationale.
//   - maporder and tickerstop run everywhere; ordered effects and ticker
//     leaks are never right.
//   - checkederr runs where state files are written or remote state is
//     acknowledged: the farm, the gridfarm coordinator/worker, the chaos
//     harness that tears their journals, and the CLIs driving them.
//   - ctxdeadline runs where outbound HTTP leaves the process: the
//     gridfarm worker/coordinator client paths and the CLIs. A request
//     without a deadline hangs a worker forever on a half-open socket.
//   - floatguard runs where rate/throughput arithmetic lives: the
//     scheduler policies and the resource/file-system models.
func Suite() []ScopedAnalyzer {
	return []ScopedAnalyzer{
		{
			Analyzer: Nodeterminism,
			Include:  []string{"wasched/internal"},
			Exclude:  []string{"wasched/internal/experiments", "wasched/internal/lint"},
		},
		{Analyzer: Maporder},
		{Analyzer: Tickerstop},
		{
			Analyzer: Checkederr,
			Include: []string{
				"wasched/internal/farm",
				"wasched/internal/gridfarm",
				"wasched/internal/chaos",
				"wasched/cmd",
			},
		},
		{
			Analyzer: Ctxdeadline,
			Include: []string{
				"wasched/internal/gridfarm",
				"wasched/internal/chaos",
				"wasched/cmd",
			},
		},
		{
			Analyzer: Floatguard,
			Include: []string{
				"wasched/internal/sched",
				"wasched/internal/restrack",
				"wasched/internal/pfs",
				"wasched/internal/bb",
			},
		},
	}
}

// Analyzers returns the suite's analyzers in declaration order.
func Analyzers() []*analysis.Analyzer {
	var out []*analysis.Analyzer
	for _, sa := range Suite() {
		out = append(out, sa.Analyzer)
	}
	return out
}

// Check runs the suite over the loaded packages: each in-scope analyzer
// runs per package, allow directives filter the findings, and malformed
// allow directives are findings themselves. The returned diagnostics are
// sorted by position.
func Check(pkgs []*load.Package, suite []ScopedAnalyzer) ([]analysis.Diagnostic, error) {
	var out []analysis.Diagnostic
	for _, pkg := range pkgs {
		allows, malformed := analysis.ParseAllows(pkg.Fset, pkg.Files)
		out = append(out, malformed...)
		for _, sa := range suite {
			if !sa.applies(pkg.ImportPath) {
				continue
			}
			diags, err := analysis.Run(sa.Analyzer, pkg.Fset, pkg.Files, pkg.Pkg, pkg.Info)
			if err != nil {
				return nil, err
			}
			out = append(out, analysis.Filter(pkg.Fset, diags, allows)...)
		}
	}
	if len(pkgs) > 0 {
		analysis.Sort(pkgs[0].Fset, out)
	}
	return out, nil
}
