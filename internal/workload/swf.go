package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"wasched/internal/cluster"
	"wasched/internal/des"
	"wasched/internal/pfs"
	"wasched/internal/slurm"
)

// SWFOptions controls the conversion of a Standard Workload Format trace
// (the Parallel Workloads Archive format) into schedulable jobs. SWF
// records carry no I/O information, so a configurable fraction of jobs is
// synthetically assigned a write phase — the standard trick in I/O-aware
// scheduling studies (and the reason the paper built its own workloads).
type SWFOptions struct {
	// CoresPerNode converts SWF processor counts to node counts
	// (ceil division). The paper's Stria has 56 cores per node.
	CoresPerNode int
	// MaxNodes drops (with a count returned) jobs wider than the cluster.
	MaxNodes int
	// IOFraction of jobs (deterministically chosen by job number) carry a
	// synthetic write phase.
	IOFraction float64
	// IOShare is the fraction of an I/O job's runtime spent writing; the
	// write is sized so an isolated job spends roughly IOShare·runtime on
	// it at IORate.
	IOShare float64
	// IORate is the isolated per-job write rate used for sizing, bytes/s.
	IORate float64
	// MaxJobs truncates the trace (0 = no limit).
	MaxJobs int
	// Seed drives the deterministic I/O assignment.
	Seed uint64
}

// DefaultSWFOptions matches the paper's environment: 56 cores/node,
// 15 nodes, 40% of jobs doing I/O for ~30% of their runtime at the
// calibrated isolated write×8 rate.
func DefaultSWFOptions() SWFOptions {
	return SWFOptions{
		CoresPerNode: 56,
		MaxNodes:     15,
		IOFraction:   0.4,
		IOShare:      0.3,
		IORate:       2.5 * pfs.GiB,
		Seed:         1,
	}
}

// Validate checks the options.
func (o SWFOptions) Validate() error {
	switch {
	case o.CoresPerNode <= 0:
		return fmt.Errorf("workload: CoresPerNode must be positive, got %d", o.CoresPerNode)
	case o.MaxNodes <= 0:
		return fmt.Errorf("workload: MaxNodes must be positive, got %d", o.MaxNodes)
	case o.IOFraction < 0 || o.IOFraction > 1:
		return fmt.Errorf("workload: IOFraction must be in [0,1], got %g", o.IOFraction)
	case o.IOShare < 0 || o.IOShare >= 1:
		return fmt.Errorf("workload: IOShare must be in [0,1), got %g", o.IOShare)
	case o.IOFraction > 0 && o.IORate <= 0:
		return fmt.Errorf("workload: IORate must be positive, got %g", o.IORate)
	case o.MaxJobs < 0:
		return fmt.Errorf("workload: MaxJobs must be non-negative, got %d", o.MaxJobs)
	}
	return nil
}

// SWFResult reports what the conversion kept and dropped.
type SWFResult struct {
	Jobs    []TimedSpec
	Dropped int // jobs wider than MaxNodes or with unusable fields
}

// ParseSWF converts a Standard Workload Format trace. Comment/header lines
// begin with ';'. The fields used are: 1 job number, 2 submit time,
// 4 run time, 8 requested processors (5 allocated as fallback),
// 9 requested time, 12 user ID. Jobs with non-positive runtime or
// processor counts are dropped.
func ParseSWF(r io.Reader, opts SWFOptions) (SWFResult, error) {
	if err := opts.Validate(); err != nil {
		return SWFResult{}, err
	}
	rng := des.NewRNG(opts.Seed, "workload/swf")
	var res SWFResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 12 {
			return res, fmt.Errorf("workload: swf line %d: want >=12 fields, got %d", lineNo, len(f))
		}
		num := func(i int) float64 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return -1
			}
			return v
		}
		jobNo := int64(num(0))
		submit := num(1)
		runtime := num(3)
		procs := num(7)
		if procs <= 0 {
			procs = num(4) // fall back to allocated processors
		}
		reqTime := num(8)
		userID := int64(num(11))
		if submit < 0 || runtime <= 0 || procs <= 0 {
			res.Dropped++
			continue
		}
		nodes := int(math.Ceil(procs / float64(opts.CoresPerNode)))
		if nodes < 1 {
			nodes = 1
		}
		if nodes > opts.MaxNodes {
			res.Dropped++
			continue
		}
		limit := reqTime
		if limit <= 0 || limit < runtime {
			limit = runtime * 2
		}
		spec := slurm.JobSpec{
			Name:  fmt.Sprintf("swf-%d", jobNo),
			Nodes: nodes,
			Limit: des.FromSeconds(limit + 60),
			User:  fmt.Sprintf("user%d", userID),
		}
		doesIO := rng.Float64() < opts.IOFraction
		if doesIO && runtime > 2 {
			ioTime := runtime * opts.IOShare
			bytes := ioTime * opts.IORate
			spec.Fingerprint = fmt.Sprintf("swf-io-n%d", nodes)
			spec.Program = cluster.BurstyProgram{
				Cycles:         1,
				Compute:        des.FromSeconds(runtime - ioTime),
				Threads:        4 * nodes,
				BytesPerThread: bytes / float64(4*nodes),
			}
		} else {
			spec.Fingerprint = fmt.Sprintf("swf-cpu-n%d", nodes)
			spec.Program = cluster.SleepProgram{D: des.FromSeconds(runtime)}
		}
		res.Jobs = append(res.Jobs, TimedSpec{At: des.TimeFromSeconds(submit), Spec: spec})
		if opts.MaxJobs > 0 && len(res.Jobs) >= opts.MaxJobs {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("workload: swf read: %w", err)
	}
	return res, nil
}
