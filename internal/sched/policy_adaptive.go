package sched

import (
	"fmt"
	"math"
	"sort"

	"wasched/internal/des"
	"wasched/internal/restrack"
)

// AdaptivePolicy implements the paper's workload-adaptive scheduling (§VII,
// Algorithms 5–7). On every round it computes the target throughput
//
//	R̃ = Σ r_j d_j · N / Σ n_j d_j                     (Eq. 1)
//
// over the queue plus the running jobs' remaining work, splits the queue
// into "zero jobs" and "regular jobs" by the threshold r* (the two-group
// approximation, Eqs. 2–5), and refuses to schedule regular jobs into
// intervals where the adjusted target R̃' is already reached — while still
// enforcing the hard throughput limit like the I/O-aware policy.
type AdaptivePolicy struct {
	// TotalNodes is the cluster size N.
	TotalNodes int
	// ThroughputLimit is the hard limit R_limit in bytes/s.
	ThroughputLimit float64
	// TwoGroup enables the two-group approximation. When false the policy
	// is the "naïve" workload-adaptive scheduler: only jobs with zero
	// estimated throughput count as zero jobs and no adjustment is made.
	TwoGroup bool
	// QoSFraction is the fraction of queued node·seconds guaranteed not
	// to be delayed by throughput regulation (Eq. 2 uses 0.5): the zero
	// group must hold at least this fraction. Zero defaults to 0.5.
	QoSFraction float64
}

// Name implements Policy.
func (p AdaptivePolicy) Name() string {
	if p.TwoGroup {
		return "adaptive"
	}
	return "adaptive-naive"
}

func (p AdaptivePolicy) validate() {
	if p.TotalNodes <= 0 {
		panic(fmt.Sprintf("sched: AdaptivePolicy.TotalNodes must be positive, got %d", p.TotalNodes))
	}
	if p.ThroughputLimit <= 0 {
		panic(fmt.Sprintf("sched: AdaptivePolicy.ThroughputLimit must be positive, got %g", p.ThroughputLimit))
	}
	if p.QoSFraction < 0 || p.QoSFraction > 1 {
		panic(fmt.Sprintf("sched: AdaptivePolicy.QoSFraction must be in [0,1], got %g", p.QoSFraction))
	}
}

// NewRound implements Policy (Algorithm 5).
func (p AdaptivePolicy) NewRound(in RoundInput) Round {
	p.validate()
	inner := IOAwarePolicy{TotalNodes: p.TotalNodes, ThroughputLimit: p.ThroughputLimit}
	rt := inner.NewRound(in).(*ioAwareRound)

	// Lines 3–5: the target throughput from the remaining I/O volume and
	// the minimum node-constrained completion time of the backlog.
	vIO := 0.0     // bytes: Σ r_j · (remaining or estimated runtime)
	nodeSec := 0.0 // node·s: Σ n_j · (remaining or estimated runtime)
	for _, j := range in.Running {
		rem := j.remaining(in.Now).Seconds()
		vIO += clampNonNeg(j.Rate) * rem
		nodeSec += float64(j.Nodes) * rem
	}
	for _, j := range in.Waiting {
		// A malformed queue entry (non-positive limit and no estimate, or
		// negative nodes) must not enter the sums with negative weight: it
		// would drag the target below the workload's real demand. The
		// engine skips such jobs at decision time; skip them here too.
		d := j.estRuntime().Seconds()
		if d <= 0 || j.Nodes < 1 {
			continue
		}
		vIO += clampNonNeg(j.Rate) * d
		nodeSec += float64(j.Nodes) * d
	}
	target := 0.0 // R̃
	if nodeSec > 0 {
		target = vIO * float64(p.TotalNodes) / nodeSec
	}

	// Lines 6–8: two-group split of the waiting queue.
	rStar, rZeroBar := p.twoGroupSplit(in.Waiting)
	adjTarget := target - float64(p.TotalNodes)*rZeroBar // R̃' (Eq. 4)
	if adjTarget < 0 {
		adjTarget = 0
	}

	// Lines 9–11: the adjusted tracker, seeded with the running jobs'
	// adjusted contributions r_j − n_j·r̄_zero (signed; see
	// restrack.ReserveSigned).
	at := restrack.NewBandwidthTracker(adjTarget)
	for _, j := range in.Running {
		// A running job's rate is an external estimate like any other: a
		// NaN or negative value must not poison the adjusted tracker.
		at.ReserveSigned(in.Now, j.StartedAt.Add(j.Limit), clampNonNeg(j.Rate)-float64(j.Nodes)*rZeroBar)
	}
	return &adaptiveRound{
		p:        p,
		rt:       rt,
		at:       at,
		rStar:    rStar,
		rZeroBar: rZeroBar,
		target:   target,
	}
}

// clampNonNeg treats an invalid (negative or NaN) rate estimate as zero so
// that it cannot push the target throughput R̃ negative or poison it.
func clampNonNeg(r float64) float64 {
	if r < 0 || math.IsNaN(r) {
		return 0
	}
	return r
}

// splitEntry is one queued job's contribution to the two-group split.
type splitEntry struct {
	ratio   float64 // r_j / n_j
	nodeSec float64 // n_j · d_j
	rate    float64 // r_j
}

// twoGroupSplit chooses the minimum threshold r* such that the zero group
// holds at least QoSFraction of the queued node·seconds (Eq. 2), and
// returns it with the zero group's average per-node load r̄_zero (Eq. 3).
// With TwoGroup disabled it returns (0, 0): only genuinely zero-throughput
// jobs form the zero group and no adjustment applies.
func (p AdaptivePolicy) twoGroupSplit(waiting []*Job) (rStar, rZeroBar float64) {
	var sc splitScratch
	return p.twoGroupSplitInto(waiting, &sc)
}

// splitScratch is the two-group split's reusable buffer. It implements
// sort.Interface on a pointer receiver so the per-round ratio sort costs
// nothing: a *splitScratch is pointer-shaped (no boxing allocation) and
// there is no sort.Slice closure to heap-allocate.
type splitScratch struct {
	entries []splitEntry
}

func (s *splitScratch) Len() int           { return len(s.entries) }
func (s *splitScratch) Less(a, b int) bool { return s.entries[a].ratio < s.entries[b].ratio }
func (s *splitScratch) Swap(a, b int)      { s.entries[a], s.entries[b] = s.entries[b], s.entries[a] }

// twoGroupSplitInto is twoGroupSplit with a caller-supplied scratch
// buffer, reused across rounds — adaptive sessions call this every round,
// and the entry slice was the split's dominant allocation.
func (p AdaptivePolicy) twoGroupSplitInto(waiting []*Job, sc *splitScratch) (rStar, rZeroBar float64) {
	sc.entries = sc.entries[:0]
	if !p.TwoGroup || len(waiting) == 0 {
		return 0, 0
	}
	frac := p.QoSFraction
	if frac == 0 {
		frac = 0.5
	}
	totalNodeSec := 0.0
	for _, j := range waiting {
		// Defensive guard: the engine and the controller both validate
		// Nodes >= 1, but a zero-node job reaching this division would
		// poison the split with a NaN/Inf ratio, and a negative rate would
		// drag r* (and thus r̄_zero and the adjusted target) below zero.
		if j.Nodes < 1 {
			continue
		}
		rate := clampNonNeg(j.Rate)
		ns := float64(j.Nodes) * j.estRuntime().Seconds()
		// A non-positive duration (limit <= 0 with no estimate) would give
		// the job *negative* node·seconds, pulling r̄_zero and the adjusted
		// target below zero. Such a job is skipped by the engine anyway.
		if ns <= 0 {
			continue
		}
		sc.entries = append(sc.entries, splitEntry{
			ratio:   rate / float64(j.Nodes),
			nodeSec: ns,
			rate:    rate,
		})
		totalNodeSec += ns
	}
	entries := sc.entries
	if len(entries) == 0 {
		return 0, 0
	}
	if totalNodeSec == 0 {
		return 0, 0
	}
	sort.Sort(sc)
	need := frac * totalNodeSec
	cum := 0.0
	i := 0
	for ; i < len(entries); i++ {
		cum += entries[i].nodeSec
		if cum >= need {
			break
		}
	}
	if i == len(entries) {
		i = len(entries) - 1
	}
	rStar = entries[i].ratio
	// All jobs with ratio <= r* are zero jobs, including ties beyond i.
	zeroNodeSec, zeroLoad := 0.0, 0.0
	for _, e := range entries {
		if e.ratio <= rStar {
			zeroNodeSec += e.nodeSec
			zeroLoad += e.rate * e.nodeSec // Eq. 3 numerator: r_j·n_j·d_j
		}
	}
	if zeroNodeSec == 0 {
		return rStar, 0
	}
	return rStar, zeroLoad / zeroNodeSec
}

type adaptiveRound struct {
	p        AdaptivePolicy
	rt       *ioAwareRound
	at       *restrack.BandwidthTracker
	rStar    float64
	rZeroBar float64
	target   float64
}

// isZeroJob applies the two-group classification r_j <= n_j·r*.
func (r *adaptiveRound) isZeroJob(j *Job) bool {
	return j.Rate <= float64(j.Nodes)*r.rStar
}

// EarliestStart implements Algorithm 7: zero jobs schedule under the
// I/O-aware constraints only; regular jobs additionally wait for intervals
// where the adjusted reservations stay within the adjusted target R̃'.
func (r *adaptiveRound) EarliestStart(j *Job, tmin des.Time) (des.Time, bool) {
	if r.isZeroJob(j) {
		return r.rt.EarliestStart(j, tmin)
	}
	t := tmin
	for {
		tRT, ok := r.rt.EarliestStart(j, t)
		if !ok {
			return des.MaxTime, false
		}
		// "Earliest time not earlier than tRT when no more than R̃' is
		// reserved in AT": the job's own contribution is not part of the
		// test — the target is a level to fill up to, not a cap on the
		// job itself.
		tAT, ok := r.at.EarliestFit(tRT, j.Limit, 0)
		if !ok {
			return des.MaxTime, false
		}
		if tAT == tRT {
			return tAT, true
		}
		t = tAT
	}
}

// Reserve implements Algorithm 6.
func (r *adaptiveRound) Reserve(j *Job, t des.Time) {
	r.rt.Reserve(j, t)
	if !r.isZeroJob(j) {
		r.at.ReserveSigned(t, t.Add(j.Limit), clampNonNeg(j.Rate)-float64(j.Nodes)*r.rZeroBar)
	}
}

// Diagnostics implements Diagnoser: the adaptive target R̃, the adjusted
// target R̃', the two-group threshold r* and the zero-group load r̄_zero.
func (r *adaptiveRound) Diagnostics() map[string]float64 {
	return map[string]float64{
		"target":          r.target,
		"adjusted_target": r.at.Limit(),
		"r_star":          r.rStar,
		"r_zero_bar":      r.rZeroBar,
		"limit":           r.p.ThroughputLimit,
	}
}
