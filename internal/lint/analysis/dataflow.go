package analysis

import "go/ast"

// Forward runs a forward dataflow analysis over g to a fixpoint and
// returns the fact at the entry of every block (indexed like g.Blocks;
// unreachable blocks keep the zero fact and are marked false in the
// second result).
//
// transfer must be pure: it returns a new fact rather than mutating its
// input (copy-on-write for map-valued facts). merge combines the facts of
// two predecessors; it must be commutative and associative so the
// fixpoint is unique regardless of worklist order. equal decides
// convergence.
//
// Analyzers typically re-apply transfer over each reachable block's
// nodes afterwards, reporting findings against the per-node facts.
func Forward[F any](g *CFG, entry F, transfer func(F, ast.Node) F, merge func(F, F) F, equal func(F, F) bool) ([]F, []bool) {
	n := len(g.Blocks)
	in := make([]F, n)
	seen := make([]bool, n)
	if n == 0 {
		return in, seen
	}
	in[0], seen[0] = entry, true

	work := []int{0}
	queued := make([]bool, n)
	queued[0] = true
	// The lattices used here are finite (locks / locals mentioned in one
	// function), so fixpoints come fast; the cap is a belt-and-braces
	// guard against a non-monotone transfer looping forever.
	maxSteps := 64 * (n + 1)
	for steps := 0; len(work) > 0 && steps < maxSteps; steps++ {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := in[b]
		for _, node := range g.Blocks[b].Nodes {
			out = transfer(out, node)
		}
		for _, s := range g.Blocks[b].Succs {
			var next F
			if !seen[s] {
				next = out
			} else {
				next = merge(in[s], out)
				if equal(next, in[s]) {
					continue
				}
			}
			in[s], seen[s] = next, true
			if !queued[s] {
				work = append(work, s)
				queued[s] = true
			}
		}
	}
	return in, seen
}
