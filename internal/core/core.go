// Package core is the top-level API of the workload-adaptive I/O-aware
// scheduling library. It assembles the full prototype the paper describes
// (Fig. 2) — the Lustre file-system model, the compute cluster, LDMS
// monitoring, the SOS store, the analytical services, and the Slurm-like
// controller with a pluggable scheduling policy — behind one Config/System
// pair.
//
// A minimal session:
//
//	cfg := core.DefaultConfig()
//	cfg.Scheduler = core.SchedulerConfig{Policy: core.Adaptive, ThroughputLimit: 20 * pfs.GiB}
//	sys, err := core.NewSystem(cfg)
//	...
//	sys.MustSubmit(workload.WriteJob(8))
//	sys.Start()
//	err = sys.RunToCompletion(100 * des.Hour)
//	fmt.Println(sys.Makespan())
//
// Lower-level control (custom policies, direct tracker manipulation) stays
// available through the subsystem packages; core only wires them.
package core

import (
	"fmt"

	"wasched/internal/analytics"
	"wasched/internal/bb"
	"wasched/internal/cluster"
	"wasched/internal/des"
	"wasched/internal/ldms"
	"wasched/internal/pfs"
	"wasched/internal/sched"
	"wasched/internal/slurm"
	"wasched/internal/sos"
	"wasched/internal/tbf"
	"wasched/internal/trace"
	"wasched/internal/workload"
)

// PolicyKind selects one of the library's scheduling policies.
type PolicyKind int

// Scheduling policies (paper §§V–VII).
const (
	// Default is the node-only Slurm backfill scheduler.
	Default PolicyKind = iota
	// EASY is the node-only scheduler with BackfillMax = 1.
	EASY
	// IOAware adds the Lustre throughput resource with a fixed limit
	// (Algorithms 2–4).
	IOAware
	// Adaptive is the workload-adaptive scheduler with the two-group
	// approximation (Algorithms 5–7).
	Adaptive
	// AdaptiveNaive is the workload-adaptive scheduler without the
	// two-group approximation.
	AdaptiveNaive
	// Plan is the plan-based burst-buffer co-scheduler (requires
	// Config.BB.CapacityBytes > 0; ThroughputLimit optional).
	Plan
	// TBF is the node-only scheduler running above the decentralized
	// token-bucket bandwidth layer (requires Config.TBF to be enabled):
	// central I/O reservation is replaced by client-side throttling.
	TBF
	// TBFStraggler is TBF with straggler-aware allowance weighting.
	TBFStraggler
)

// String names the policy kind.
func (k PolicyKind) String() string {
	switch k {
	case Default:
		return "default"
	case EASY:
		return "easy"
	case IOAware:
		return "io-aware"
	case Adaptive:
		return "adaptive"
	case AdaptiveNaive:
		return "adaptive-naive"
	case Plan:
		return "plan"
	case TBF:
		return "tbf"
	case TBFStraggler:
		return "tbf-straggler"
	default:
		return fmt.Sprintf("PolicyKind(%d)", int(k))
	}
}

// SchedulerConfig selects and parameterises the scheduling policy.
type SchedulerConfig struct {
	Policy PolicyKind
	// ThroughputLimit is R_limit in bytes/s; required for IOAware,
	// Adaptive and AdaptiveNaive.
	ThroughputLimit float64
	// QoSFraction tunes the two-group split (0 = the paper's 1/2).
	QoSFraction float64
	// IgnoreMeasured disables the R_now guard (ablations only).
	IgnoreMeasured bool
	// BBAware wraps the selected policy in sched.BBAwarePolicy so its
	// backfill reservations also respect the burst-buffer pool (requires
	// Config.BB.CapacityBytes > 0). Ignored for Plan, which co-schedules
	// the pool natively.
	BBAware bool
	// Custom overrides everything above with a caller-supplied policy.
	Custom sched.Policy
}

// Config assembles a full system.
type Config struct {
	// Nodes is the compute-node count (the paper's N = 15).
	Nodes int
	// Seed drives every stochastic component; a fixed seed reproduces a
	// run exactly.
	Seed      uint64
	Scheduler SchedulerConfig
	FS        pfs.Config
	Monitor   ldms.Config
	Analytics analytics.Config
	Control   slurm.Config
	// BB configures the burst-buffer tier; CapacityBytes = 0 (the
	// default) builds no tier and rejects BB-requesting jobs.
	BB bb.Config
	// TBF configures the client-side token-bucket bandwidth layer;
	// CapacityBytesPerSec = 0 (the default) builds no limiter. The layer
	// is execution-time control and composes with any policy, but the
	// TBF and TBFStraggler policy kinds require it.
	TBF tbf.Config
	// TracePeriod is the run recorder's sampling period (0 = 5 s).
	TracePeriod des.Duration
}

// DefaultConfig mirrors the paper's testbed: 15 nodes, the calibrated
// Lustre model, 1 s monitoring, 30 s scheduling rounds with Slurm's
// default bf_max_job_test, and the default (node-only) policy.
func DefaultConfig() Config {
	scfg := slurm.DefaultConfig()
	scfg.Options.MaxJobTest = sched.SlurmDefaultTestLimit
	return Config{
		Nodes:       15,
		Seed:        1,
		FS:          pfs.DefaultConfig(),
		Monitor:     ldms.DefaultConfig(),
		Analytics:   analytics.DefaultConfig(),
		Control:     scfg,
		TracePeriod: 5 * des.Second,
	}
}

// policy materialises the configured scheduling policy.
func (c Config) policy() (sched.Policy, int, error) {
	if c.Scheduler.Custom != nil {
		return c.Scheduler.Custom, c.Control.Options.BackfillMax, nil
	}
	p, backfillMax, err := c.basePolicy()
	if err != nil {
		return nil, 0, err
	}
	if c.Scheduler.BBAware && c.Scheduler.Policy != Plan {
		if c.BB.CapacityBytes <= 0 {
			return nil, 0, fmt.Errorf("core: BBAware needs a positive BB.CapacityBytes")
		}
		p = sched.BBAwarePolicy{Inner: p, Capacity: c.BB.CapacityBytes}
	}
	return p, backfillMax, nil
}

func (c Config) basePolicy() (sched.Policy, int, error) {
	backfillMax := c.Control.Options.BackfillMax
	switch c.Scheduler.Policy {
	case Default:
		return sched.NodePolicy{TotalNodes: c.Nodes}, backfillMax, nil
	case EASY:
		return sched.NodePolicy{TotalNodes: c.Nodes}, sched.EASY, nil
	case IOAware:
		if c.Scheduler.ThroughputLimit <= 0 {
			return nil, 0, fmt.Errorf("core: io-aware policy needs a positive ThroughputLimit")
		}
		return sched.IOAwarePolicy{
			TotalNodes:      c.Nodes,
			ThroughputLimit: c.Scheduler.ThroughputLimit,
			IgnoreMeasured:  c.Scheduler.IgnoreMeasured,
		}, backfillMax, nil
	case Adaptive, AdaptiveNaive:
		if c.Scheduler.ThroughputLimit <= 0 {
			return nil, 0, fmt.Errorf("core: adaptive policy needs a positive ThroughputLimit")
		}
		return sched.AdaptivePolicy{
			TotalNodes:      c.Nodes,
			ThroughputLimit: c.Scheduler.ThroughputLimit,
			TwoGroup:        c.Scheduler.Policy == Adaptive,
			QoSFraction:     c.Scheduler.QoSFraction,
		}, backfillMax, nil
	case Plan:
		if c.BB.CapacityBytes <= 0 {
			return nil, 0, fmt.Errorf("core: plan policy needs a positive BB.CapacityBytes")
		}
		return sched.PlanPolicy{
			TotalNodes:      c.Nodes,
			BBCapacity:      c.BB.CapacityBytes,
			ThroughputLimit: c.Scheduler.ThroughputLimit,
			IgnoreMeasured:  c.Scheduler.IgnoreMeasured,
		}, backfillMax, nil
	case TBF, TBFStraggler:
		if c.TBF.CapacityBytesPerSec <= 0 {
			return nil, 0, fmt.Errorf("core: %v policy needs a positive TBF.CapacityBytesPerSec", c.Scheduler.Policy)
		}
		return sched.TBFPolicy{
			TotalNodes: c.Nodes,
			Straggler:  c.Scheduler.Policy == TBFStraggler,
		}, backfillMax, nil
	default:
		return nil, 0, fmt.Errorf("core: unknown policy kind %v", c.Scheduler.Policy)
	}
}

// System is a fully wired scheduling system on its own simulated timeline.
type System struct {
	Eng        *des.Engine
	FS         *pfs.FileSystem
	Cluster    *cluster.Cluster
	Store      *sos.Store
	Monitor    *ldms.Daemon
	Analytics  *analytics.Service
	Controller *slurm.Controller
	Recorder   *trace.Recorder
	// BB is the burst-buffer tier; nil when Config.BB.CapacityBytes = 0.
	BB *bb.Tier
	// TBF is the token-bucket bandwidth limiter; nil when
	// Config.TBF.CapacityBytesPerSec = 0.
	TBF *tbf.Limiter

	cfg       Config
	submitted int
}

// NewSystem wires a system from the configuration.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("core: node count must be positive, got %d", cfg.Nodes)
	}
	policy, backfillMax, err := cfg.policy()
	if err != nil {
		return nil, err
	}
	cfg.Control.Options.BackfillMax = backfillMax
	eng := des.NewEngine()
	fs, err := pfs.New(eng, cfg.FS, cfg.Seed)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.New(eng, fs, cfg.Nodes, "node", cfg.Seed)
	if err != nil {
		return nil, err
	}
	store := sos.NewStore()
	daemon, err := ldms.Start(eng, fs, store, cl.NodeNames(), cfg.Monitor, cfg.Seed)
	if err != nil {
		return nil, err
	}
	svc, err := analytics.New(eng, store, cl.NodeNames(), cfg.Analytics)
	if err != nil {
		return nil, err
	}
	ctl, err := slurm.New(eng, cl, policy, svc, cfg.Control)
	if err != nil {
		return nil, err
	}
	var tier *bb.Tier
	if cfg.BB.CapacityBytes > 0 {
		tier, err = bb.New(eng, fs, cfg.BB)
		if err != nil {
			return nil, err
		}
		ctl.AttachBB(tier)
	}
	if cfg.Scheduler.Policy == TBFStraggler && cfg.Scheduler.Custom == nil {
		cfg.TBF.Straggler = true
	}
	var lim *tbf.Limiter
	if cfg.TBF.CapacityBytesPerSec > 0 {
		lim, err = tbf.New(eng, fs, cfg.TBF)
		if err != nil {
			return nil, err
		}
		ctl.AttachTBF(lim)
	}
	period := cfg.TracePeriod
	if period <= 0 {
		period = 5 * des.Second
	}
	rec := trace.NewRecorder(eng, fs, cl, ctl, period)
	if tier != nil {
		rec.SetBB(tier)
	}
	if lim != nil {
		rec.SetTBF(lim)
	}
	return &System{
		Eng:        eng,
		FS:         fs,
		Cluster:    cl,
		Store:      store,
		Monitor:    daemon,
		Analytics:  svc,
		Controller: ctl,
		Recorder:   rec,
		BB:         tier,
		TBF:        lim,
		cfg:        cfg,
	}, nil
}

// Config returns the configuration the system was built from.
func (s *System) Config() Config { return s.cfg }

// Submit enqueues a job now.
func (s *System) Submit(spec slurm.JobSpec) (*slurm.JobRecord, error) {
	r, err := s.Controller.Submit(spec)
	if err == nil {
		s.submitted++
	}
	return r, err
}

// MustSubmit submits or panics; convenient in examples and experiments
// where specs are statically valid.
func (s *System) MustSubmit(spec slurm.JobSpec) *slurm.JobRecord {
	r, err := s.Submit(spec)
	if err != nil {
		panic(err)
	}
	return r
}

// SubmitAt schedules a future submission (arrival processes).
func (s *System) SubmitAt(spec slurm.JobSpec, at des.Time) error {
	if err := s.Controller.SubmitAt(spec, at); err != nil {
		return err
	}
	s.submitted++
	return nil
}

// SubmitAll submits specs in order at the current time.
func (s *System) SubmitAll(specs []slurm.JobSpec) error {
	for i, spec := range specs {
		if _, err := s.Submit(spec); err != nil {
			return fmt.Errorf("core: submit %d (%s): %w", i, spec.Name, err)
		}
	}
	return nil
}

// Submitted returns how many jobs have been submitted (or scheduled for
// submission) through this System.
func (s *System) Submitted() int { return s.submitted }

// Start begins scheduling. Call once after the initial submissions.
func (s *System) Start() { s.Controller.Run() }

// RunUntil advances the simulation to the given time.
func (s *System) RunUntil(t des.Time) { s.Eng.Run(t) }

// RunToCompletion advances the simulation until every submitted job has
// finished, failing if that takes longer than max simulated time.
func (s *System) RunToCompletion(max des.Duration) error {
	deadline := s.Eng.Now().Add(max)
	for s.Controller.DoneCount() < s.submitted {
		if s.Eng.Now() >= deadline {
			return fmt.Errorf("core: %d of %d jobs unfinished after %v (queue=%d running=%d)",
				s.submitted-s.Controller.DoneCount(), s.submitted, max,
				s.Controller.QueueLength(), s.Controller.RunningCount())
		}
		if !s.Eng.Step() {
			return fmt.Errorf("core: simulation went idle with %d of %d jobs unfinished",
				s.submitted-s.Controller.DoneCount(), s.submitted)
		}
	}
	return nil
}

// Makespan returns the completion time of the last finished job.
func (s *System) Makespan() des.Time { return s.Controller.Makespan() }

// Pretrain seeds the estimator for one job class (paper "pre-training").
func (s *System) Pretrain(fingerprint string, rate float64, runtime des.Duration) {
	s.Analytics.Pretrain(fingerprint, rate, runtime)
}

// PretrainIsolated reproduces the paper's pre-training protocol: every
// distinct job class in specs runs once, alone, on a scratch copy of this
// system, and the measured rate and runtime seed this system's estimator.
func (s *System) PretrainIsolated(specs []slurm.JobSpec) error {
	byFP := make(map[string]slurm.JobSpec)
	var order []string
	for _, spec := range specs {
		fp := spec.Fingerprint
		if fp == "" {
			fp = spec.Name
		}
		if _, ok := byFP[fp]; !ok {
			byFP[fp] = spec
			order = append(order, fp)
		}
	}
	for _, fp := range order {
		est, err := s.measureIsolated(byFP[fp])
		if err != nil {
			return fmt.Errorf("core: pretrain %s: %w", fp, err)
		}
		s.Analytics.Pretrain(fp, est.Rate, est.Runtime)
	}
	return nil
}

func (s *System) measureIsolated(spec slurm.JobSpec) (analytics.Estimate, error) {
	cfg := DefaultConfig()
	cfg.Nodes = s.cfg.Nodes
	cfg.FS = s.cfg.FS
	cfg.BB = s.cfg.BB   // BB-requesting specs need a tier on the scratch system too
	cfg.TBF = s.cfg.TBF // measure under the same throttling regime the real run sees
	cfg.Seed = s.cfg.Seed ^ 0x9E3779B97F4A7C15 // independent timeline per system seed
	cfg.TracePeriod = des.Second
	scratch, err := NewSystem(cfg)
	if err != nil {
		return analytics.Estimate{}, err
	}
	rec, err := scratch.Submit(spec)
	if err != nil {
		return analytics.Estimate{}, err
	}
	scratch.Start()
	if err := scratch.RunToCompletion(des.Duration(spec.Limit) + des.Hour); err != nil {
		return analytics.Estimate{}, err
	}
	if rec.State != slurm.StateCompleted && rec.State != slurm.StateTimeout {
		return analytics.Estimate{}, fmt.Errorf("isolated run ended in state %v", rec.State)
	}
	fp := spec.Fingerprint
	if fp == "" {
		fp = spec.Name
	}
	est, ok := scratch.Analytics.Estimate(fp)
	if !ok {
		return analytics.Estimate{}, fmt.Errorf("no estimate after isolated run")
	}
	return est, nil
}

// FeedAll submits specs progressively through a depth-bounded feeder (see
// workload.StartFeeder) instead of one batch, counting them toward
// RunToCompletion. Start the system first or immediately after; the feeder
// checks the queue every period.
func (s *System) FeedAll(specs []slurm.JobSpec, depth int, period des.Duration) error {
	if _, err := workload.StartFeeder(s.Eng, s.Controller, specs, depth, period); err != nil {
		return err
	}
	s.submitted += len(specs)
	return nil
}
