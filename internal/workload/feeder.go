package workload

import (
	"fmt"

	"wasched/internal/des"
	"wasched/internal/slurm"
)

// Feeder submits a workload progressively, keeping the controller's queue
// at a bounded depth — the "user script watching squeue" submission
// protocol. The paper does not state how its workloads entered the queue
// (see EXPERIMENTS.md, "Submission protocol"); the feeder lets experiments
// explore that dimension: a shallow queue makes the adaptive target R̃
// reflect near-term queue composition instead of the whole campaign.
type Feeder struct {
	eng    *des.Engine
	ctl    *slurm.Controller
	specs  []slurm.JobSpec
	depth  int
	next   int
	stop   func()
	closed bool
}

// StartFeeder begins feeding specs (in order) whenever the queue holds
// fewer than depth jobs, checking every period. It submits the first
// batch immediately.
func StartFeeder(eng *des.Engine, ctl *slurm.Controller, specs []slurm.JobSpec, depth int, period des.Duration) (*Feeder, error) {
	if depth <= 0 {
		return nil, fmt.Errorf("workload: feeder depth must be positive, got %d", depth)
	}
	if period <= 0 {
		return nil, fmt.Errorf("workload: feeder period must be positive, got %v", period)
	}
	f := &Feeder{eng: eng, ctl: ctl, specs: specs, depth: depth}
	f.fill()
	if f.closed {
		// The first batch exhausted the specs (empty or shallow workload):
		// installing the ticker now would leave it firing forever, since
		// Stop() already ran with nothing to cancel.
		return f, nil
	}
	f.stop = eng.Ticker(period, "workload/feeder", func(des.Time) { f.fill() })
	return f, nil
}

func (f *Feeder) fill() {
	if f.closed {
		return
	}
	for f.next < len(f.specs) && f.ctl.QueueLength() < f.depth {
		if _, err := f.ctl.Submit(f.specs[f.next]); err != nil {
			panic(fmt.Sprintf("workload: feeder submit %d: %v", f.next, err))
		}
		f.next++
	}
	if f.next == len(f.specs) {
		f.Stop()
	}
}

// Submitted returns how many jobs have been submitted so far.
func (f *Feeder) Submitted() int { return f.next }

// Exhausted reports whether every spec has been submitted.
func (f *Feeder) Exhausted() bool { return f.next == len(f.specs) }

// Stop halts the feeder (it stops automatically once exhausted).
func (f *Feeder) Stop() {
	if f.closed {
		return
	}
	f.closed = true
	if f.stop != nil {
		f.stop()
	}
}
