package chaos

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// verdict is the fault decision for one delivery. Every request draws all
// five values from its stream in a fixed order regardless of which knobs
// are enabled, so a stream's verdict sequence depends only on (seed,
// label, request ordinal) — never on the plan's shape.
type verdict struct {
	delay    time.Duration // > 0: hold the delivery this long first
	dropReq  bool          // never reaches the server
	err500   bool          // synthetic 500, server not reached
	dup      bool          // delivered twice
	dropResp bool          // server processed it, response lost
}

// TransportStats counts the faults a Transport injected.
type TransportStats struct {
	Requests         int
	Delays           int
	DroppedRequests  int
	Injected500s     int
	Duplicates       int
	DroppedResponses int
}

// Transport wraps an http.RoundTripper with a seeded fault schedule. Each
// (method, URL path) pair is an independent verdict stream, so lease
// traffic and upload traffic draw decorrelated fault sequences and adding
// a new call site does not shift the faults of existing ones.
type Transport struct {
	base http.RoundTripper
	plan Plan
	seed uint64
	name string

	mu      sync.Mutex
	streams map[string]*rng
	stats   TransportStats
}

// NewTransport builds a fault-injecting RoundTripper under plan, seeded by
// (seed, name) — name is typically the worker name, so a fleet under one
// seed still draws distinct per-worker fault sequences. base nil means
// http.DefaultTransport.
func NewTransport(base http.RoundTripper, seed uint64, name string, plan Plan) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	plan.normalize()
	return &Transport{
		base:    base,
		plan:    plan,
		seed:    seed,
		name:    name,
		streams: make(map[string]*rng),
	}
}

// Stats snapshots the injected-fault counters.
func (t *Transport) Stats() TransportStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// draw takes the next verdict for the request's stream and tallies it.
func (t *Transport) draw(req *http.Request) verdict {
	label := t.name + "\x00" + req.Method + "\x00" + req.URL.Path
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.streams[label]
	if r == nil {
		r = streamRNG(t.seed, label)
		t.streams[label] = r
	}
	var v verdict
	// Fixed draw order; every knob consumes exactly one value per request.
	if d := r.float64(); d < t.plan.Delay {
		frac := d / t.plan.Delay // reuse the draw so the delay is seeded too
		v.delay = time.Duration(frac * float64(t.plan.DelayMax))
	}
	v.dropReq = r.float64() < t.plan.DropRequest
	v.err500 = r.float64() < t.plan.Err500
	v.dup = r.float64() < t.plan.Duplicate
	v.dropResp = r.float64() < t.plan.DropResponse
	t.stats.Requests++
	if v.delay > 0 {
		t.stats.Delays++
	}
	switch {
	case v.dropReq:
		t.stats.DroppedRequests++
	case v.err500:
		t.stats.Injected500s++
	default:
		if v.dup {
			t.stats.Duplicates++
		}
		if v.dropResp {
			t.stats.DroppedResponses++
		}
	}
	return v
}

// RoundTrip applies the verdict: delay, then either swallow the request,
// answer with a synthetic 500, or deliver it (twice, when duplicated) —
// and finally, possibly lose the response after the server has committed
// its effects. Faults honour the request's context, so injected latency
// never outlives the caller's deadline.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	v := t.draw(req)
	if v.delay > 0 {
		timer := time.NewTimer(v.delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	if v.dropReq {
		return nil, fmt.Errorf("chaos: request dropped (%s %s)", req.Method, req.URL.Path)
	}
	if v.err500 {
		return &http.Response{
			Status:     "500 chaos injected",
			StatusCode: http.StatusInternalServerError,
			Proto:      req.Proto,
			ProtoMajor: req.ProtoMajor,
			ProtoMinor: req.ProtoMinor,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("chaos: injected 500")),
			Request:    req,
		}, nil
	}
	if v.dup {
		if extra, err := t.clone(req); err == nil {
			if resp, err := t.base.RoundTrip(extra); err == nil {
				// The duplicate's effects (a second admission attempt, a
				// second lease renewal) are the point; its response is not.
				//waschedlint:allow checkederr the duplicate's response bytes are deliberately thrown away
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				//waschedlint:allow checkederr the duplicate's response is deliberately discarded; the primary delivery below is the one whose errors matter
				resp.Body.Close()
			}
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if v.dropResp {
		// The server has already processed the request; drain and drop the
		// answer so the client sees a torn connection after commit.
		//waschedlint:allow checkederr the response is being destroyed on purpose; its bytes are the fault
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		//waschedlint:allow checkederr the response is being destroyed to simulate a torn connection; its close error is part of the wreckage
		resp.Body.Close()
		return nil, fmt.Errorf("chaos: response dropped (%s %s)", req.Method, req.URL.Path)
	}
	return resp, nil
}

// clone rebuilds the request for a duplicate delivery; requests without a
// replayable body (no GetBody) cannot be duplicated and return an error.
func (t *Transport) clone(req *http.Request) (*http.Request, error) {
	extra := req.Clone(req.Context())
	if req.Body == nil || req.Body == http.NoBody {
		return extra, nil
	}
	if req.GetBody == nil {
		return nil, fmt.Errorf("chaos: request body is not replayable")
	}
	body, err := req.GetBody()
	if err != nil {
		return nil, err
	}
	extra.Body = body
	return extra, nil
}

var _ http.RoundTripper = (*Transport)(nil)
