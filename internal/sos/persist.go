package sos

import (
	"encoding/gob"
	"fmt"
	"io"

	"wasched/internal/des"
)

// The wire format mirrors SOS's on-disk container dumps: a store is a
// sequence of containers, each with its schema and per-source column data.

type wireStore struct {
	Containers []wireContainer
}

type wireContainer struct {
	Schema  Schema
	Sources []wireSeries
}

type wireSeries struct {
	Source string
	Times  []des.Time
	Values [][]float64
}

// Save serialises the whole store (all containers, all records) with
// encoding/gob. The format round-trips through Load.
func (st *Store) Save(w io.Writer) error {
	ws := wireStore{}
	for _, name := range st.names {
		c := st.containers[name]
		wc := wireContainer{Schema: c.schema}
		for _, src := range c.sources {
			s := c.bySource[src]
			wc.Sources = append(wc.Sources, wireSeries{
				Source: src,
				Times:  s.times,
				Values: s.values,
			})
		}
		ws.Containers = append(ws.Containers, wc)
	}
	if err := gob.NewEncoder(w).Encode(ws); err != nil {
		return fmt.Errorf("sos: encode: %w", err)
	}
	return nil
}

// Load deserialises a store written by Save into an empty store.
// Loading into a non-empty store fails (merging is not defined).
func (st *Store) Load(r io.Reader) error {
	if len(st.names) != 0 {
		return fmt.Errorf("sos: Load needs an empty store, have %d containers", len(st.names))
	}
	var ws wireStore
	if err := gob.NewDecoder(r).Decode(&ws); err != nil {
		return fmt.Errorf("sos: decode: %w", err)
	}
	for _, wc := range ws.Containers {
		c, err := st.CreateContainer(wc.Schema)
		if err != nil {
			return err
		}
		for _, s := range wc.Sources {
			if len(s.Times) != len(s.Values) {
				return fmt.Errorf("sos: container %q source %q: %d times, %d rows",
					wc.Schema.Name, s.Source, len(s.Times), len(s.Values))
			}
			for i := range s.Times {
				if err := c.Append(s.Source, s.Times[i], s.Values[i]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ExportCSV writes one container as CSV: source,time_s,<metrics...>, in
// source order then time order.
func (c *Container) ExportCSV(w io.Writer) error {
	if _, err := fmt.Fprint(w, "source,time_s"); err != nil {
		return err
	}
	for _, m := range c.schema.Metrics {
		if _, err := fmt.Fprintf(w, ",%s", m); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, src := range c.sources {
		s := c.bySource[src]
		for i := range s.times {
			if _, err := fmt.Fprintf(w, "%s,%.6f", src, s.times[i].Seconds()); err != nil {
				return err
			}
			for _, v := range s.values[i] {
				if _, err := fmt.Fprintf(w, ",%g", v); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}
