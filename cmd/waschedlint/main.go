// Command waschedlint runs the repository's static-analysis suite: five
// analyzers that pin the invariants bit-identical replay and the farm's
// content-hashed result cache depend on (see internal/lint).
//
// Usage:
//
//	waschedlint [-list] [packages...]
//
// With no arguments it analyzes ./... . Exit status is 1 when any
// diagnostic is reported, 0 on a clean run. Suppress a deliberate
// exception with a trailing or preceding comment:
//
//	//waschedlint:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"

	"wasched/internal/lint"
	"wasched/internal/lint/load"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()
	pkgs, err := load.Packages(fset, "", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "waschedlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Check(pkgs, lint.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "waschedlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Printf("%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "waschedlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
