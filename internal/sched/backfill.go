package sched

import "wasched/internal/des"

// Unlimited directs the backfill engine to reserve resources for every
// delayed job, which is the paper's characterisation of the default Slurm
// configuration (BackfillMax = ∞).
const Unlimited = 0

// EASY is the BackfillMax value that makes the engine equivalent to EASY
// backfill: only the first delayed job receives a reservation.
const EASY = 1

// SlurmDefaultTestLimit mirrors Slurm's bf_max_job_test default: at most
// this many queued jobs are examined per round. Zero means no limit.
const SlurmDefaultTestLimit = 100

// Decision is the outcome of one scheduling round for one examined job.
type Decision struct {
	Job *Job
	// StartNow is true when the job can start immediately.
	StartNow bool
	// PlannedStart is the reservation time for delayed jobs that received
	// one (valid when Reserved is true).
	PlannedStart des.Time
	// Reserved is true when resources were reserved for a delayed job.
	Reserved bool
	// Skipped is true when the job was passed over without a reservation
	// (BackfillMax exhausted, or no feasible start exists).
	Skipped bool
}

// Options configure the backfill engine.
type Options struct {
	// BackfillMax bounds how many delayed jobs receive reservations per
	// round (paper Algorithm 1). Unlimited (0) reserves for all; EASY (1)
	// reserves only for the head of the queue.
	BackfillMax int
	// MaxJobTest bounds how many queued jobs are examined per round
	// (Slurm bf_max_job_test). Zero examines the whole queue.
	MaxJobTest int
}

// RunRound executes one round of the backfill algorithm (paper
// Algorithm 1) under the given policy. The waiting slice must already be
// sorted (SortQueue); running jobs must carry StartedAt. The returned
// decisions list one entry per examined job, in queue order; callers start
// the StartNow jobs. The round state is returned alongside so callers can
// read per-round diagnostics (Diagnoser).
//
// The engine asks the policy for a fresh Round (reservation trackers
// initialised from the running set), then walks the queue: a job whose
// earliest start equals the current time starts now and its resources are
// reserved; otherwise the job receives a future reservation, until
// BackfillMax reservations have been made, after which jobs are skipped
// for this round.
func RunRound(p Policy, in RoundInput, opt Options) ([]Decision, Round) {
	var rn Runner
	rt := p.NewRound(in)
	return rn.RunRound(p, rt, in, opt), rt
}

// Runner owns the backfill engine's per-round buffers (the decision list,
// the reordered-window copy) so a long replay reuses them instead of
// allocating every round. The zero value is ready. The returned decision
// slice is valid until the Runner's next RunRound call.
type Runner struct {
	decisions []Decision
	window    []*Job
}

// RunRound is the engine loop of the package-level RunRound, but against a
// caller-supplied Round — the entry point for incremental sessions, which
// build the Round from carried state (Session.BeginRound) rather than
// asking the policy for a fresh one.
//
//waschedlint:hotpath
func (rn *Runner) RunRound(p Policy, rt Round, in RoundInput, opt Options) []Decision {
	window := in.Waiting
	if opt.MaxJobTest > 0 && len(window) > opt.MaxJobTest {
		window = window[:opt.MaxJobTest]
	}
	// Packing policies (WindowOrderer) reorder the examined window; the
	// copy keeps the controller's queue order intact.
	if orderer, ok := p.(WindowOrderer); ok {
		rn.window = append(rn.window[:0], window...)
		orderer.OrderWindow(in, rn.window)
		window = rn.window
	}
	decisions := rn.decisions[:0]
	backfillCount := 0
	for _, j := range window {
		d := Decision{Job: j}
		// Defensive validation: the controller rejects such jobs at
		// submission, but a zero-node or zero-length job reaching the
		// trackers would divide by zero in the adaptive split or panic in
		// the profile arithmetic. Hold it without burning a window's
		// backfill reservation.
		if j.Nodes < 1 || j.Limit <= 0 {
			d.Skipped = true
			decisions = append(decisions, d)
			continue
		}
		t, ok := rt.EarliestStart(j, in.Now)
		switch {
		case !ok:
			// No feasible start under the policy's limits (e.g. the job
			// demands more than the whole file system): hold the job
			// without burning a backfill reservation.
			d.Skipped = true
		case t == in.Now:
			d.StartNow = true
			rt.Reserve(j, in.Now)
		case opt.BackfillMax != Unlimited && backfillCount >= opt.BackfillMax:
			d.Skipped = true
		default:
			d.PlannedStart = t
			d.Reserved = true
			rt.Reserve(j, t)
			backfillCount++
		}
		decisions = append(decisions, d)
	}
	rn.decisions = decisions
	return decisions
}

// StartNowJobs filters a decision list down to the jobs to start now, in
// queue order.
func StartNowJobs(decisions []Decision) []*Job {
	var out []*Job
	for _, d := range decisions {
		if d.StartNow {
			out = append(out, d.Job)
		}
	}
	return out
}
