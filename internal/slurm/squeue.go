package slurm

import (
	"fmt"
	"io"
	"sort"
)

// WriteQueue writes an squeue-style snapshot: every pending and running
// job with its state and, for pending jobs, the reason it waits.
func (c *Controller) WriteQueue(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-10s %-12s %5s %-10s %10s  %s\n",
		"JobID", "JobName", "Nodes", "State", "Wait[s]", "Reason/Nodes"); err != nil {
		return err
	}
	now := c.eng.Now()
	for _, r := range c.pending {
		reason := "Resources"
		if r.held > 0 {
			reason = "Dependency"
		}
		if _, err := fmt.Fprintf(w, "%-10s %-12s %5d %-10s %10.0f  %s\n",
			r.ID, r.Spec.Name, r.Spec.Nodes, r.State, now.Sub(r.Submit).Seconds(), reason); err != nil {
			return err
		}
	}
	// Running jobs in ID order for determinism.
	ids := make([]string, 0, len(c.runningID))
	for id := range c.runningID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		r := c.runningID[id]
		if _, err := fmt.Fprintf(w, "%-10s %-12s %5d %-10s %10.0f  %v\n",
			r.ID, r.Spec.Name, r.Spec.Nodes, r.State, r.WaitTime().Seconds(), r.Nodes); err != nil {
			return err
		}
	}
	return nil
}
