package slurm

import (
	"bytes"
	"strings"
	"testing"

	"wasched/internal/cluster"
	"wasched/internal/des"
	"wasched/internal/pfs"
	"wasched/internal/sched"
)

func TestDependencyHoldsUntilCompletion(t *testing.T) {
	r := newRig(t, 4, sched.NodePolicy{TotalNodes: 4}, DefaultConfig())
	first, _ := r.ctl.Submit(sleepSpec("first", 100*des.Second, 200*des.Second))
	depSpec := sleepSpec("second", 50*des.Second, 100*des.Second)
	depSpec.DependsOn = []string{first.ID}
	second, err := r.ctl.Submit(depSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Held() {
		t.Fatal("dependent job must be held")
	}
	r.ctl.Run()
	r.eng.Run(des.TimeFromSeconds(50))
	if second.State != StatePending {
		t.Fatalf("held job ran early: %v", second.State)
	}
	r.eng.Run(des.TimeFromSeconds(1000))
	if second.State != StateCompleted {
		t.Fatalf("dependent must run after dependency: %v", second.State)
	}
	if second.Start < first.End {
		t.Fatalf("dependent started %v before dependency ended %v", second.Start, first.End)
	}
}

func TestDependencyOnCompletedJobIsImmediate(t *testing.T) {
	r := newRig(t, 1, sched.NodePolicy{TotalNodes: 1}, DefaultConfig())
	first, _ := r.ctl.Submit(sleepSpec("first", 10*des.Second, 60*des.Second))
	r.ctl.Run()
	r.eng.Run(des.TimeFromSeconds(100))
	if first.State != StateCompleted {
		t.Fatal("precondition")
	}
	spec := sleepSpec("second", 10*des.Second, 60*des.Second)
	spec.DependsOn = []string{first.ID}
	second, err := r.ctl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if second.Held() {
		t.Fatal("dependency on a completed job must be satisfied immediately")
	}
}

func TestDependencyFailureCancelsChain(t *testing.T) {
	r := newRig(t, 2, sched.NodePolicy{TotalNodes: 2}, DefaultConfig())
	// A job that will hit its time limit.
	doomed, _ := r.ctl.Submit(sleepSpec("doomed", 1000*des.Second, 30*des.Second))
	mid := sleepSpec("mid", 10*des.Second, 60*des.Second)
	mid.DependsOn = []string{doomed.ID}
	midRec, _ := r.ctl.Submit(mid)
	leaf := sleepSpec("leaf", 10*des.Second, 60*des.Second)
	leaf.DependsOn = []string{midRec.ID}
	leafRec, _ := r.ctl.Submit(leaf)
	r.ctl.Run()
	r.eng.Run(des.TimeFromSeconds(500))
	if doomed.State != StateTimeout {
		t.Fatalf("doomed: %v", doomed.State)
	}
	if midRec.State != StateCancelled || midRec.State.String() != "CANCELLED" {
		t.Fatalf("mid must be cancelled: %v", midRec.State)
	}
	if leafRec.State != StateCancelled {
		t.Fatalf("cancellation must cascade: %v", leafRec.State)
	}
	if !r.ctl.Idle() {
		t.Fatal("cancelled jobs must leave the queue")
	}
}

func TestDependencyValidation(t *testing.T) {
	r := newRig(t, 1, sched.NodePolicy{TotalNodes: 1}, DefaultConfig())
	spec := sleepSpec("x", 10*des.Second, 60*des.Second)
	spec.DependsOn = []string{"job-99999"}
	if _, err := r.ctl.Submit(spec); err == nil {
		t.Fatal("unknown dependency must be rejected")
	}
	// Rejected submissions must not leak IDs: the next job gets a
	// contiguous ID.
	a, _ := r.ctl.Submit(sleepSpec("a", des.Second, des.Minute))
	if a.ID != "job-00001" {
		t.Fatalf("ID leaked by failed submit: %s", a.ID)
	}
	// Dependency on a failed job is rejected at submit time.
	r.ctl.Run()
	doomed, _ := r.ctl.Submit(sleepSpec("doom", 1000*des.Second, 10*des.Second))
	r.eng.Run(des.TimeFromSeconds(200))
	if doomed.State != StateTimeout {
		t.Fatal("precondition")
	}
	spec = sleepSpec("y", 10*des.Second, 60*des.Second)
	spec.DependsOn = []string{doomed.ID}
	if _, err := r.ctl.Submit(spec); err == nil {
		t.Fatal("dependency on a failed job must be rejected")
	}
}

func TestMultipleDependencies(t *testing.T) {
	r := newRig(t, 3, sched.NodePolicy{TotalNodes: 3}, DefaultConfig())
	a, _ := r.ctl.Submit(sleepSpec("a", 50*des.Second, 100*des.Second))
	b, _ := r.ctl.Submit(sleepSpec("b", 150*des.Second, 300*des.Second))
	spec := sleepSpec("both", 10*des.Second, 60*des.Second)
	spec.DependsOn = []string{a.ID, b.ID}
	both, _ := r.ctl.Submit(spec)
	r.ctl.Run()
	r.eng.Run(des.TimeFromSeconds(100)) // a done, b still running
	if !both.Held() {
		t.Fatal("must hold until ALL dependencies complete")
	}
	r.eng.Run(des.TimeFromSeconds(1000))
	if both.State != StateCompleted || both.Start < b.End {
		t.Fatalf("both: %v start=%v bEnd=%v", both.State, both.Start, b.End)
	}
}

func TestSubmitArray(t *testing.T) {
	r := newRig(t, 4, sched.NodePolicy{TotalNodes: 4}, DefaultConfig())
	recs, err := r.ctl.SubmitArray(sleepSpec("arr", 10*des.Second, 60*des.Second), 8)
	if err != nil || len(recs) != 8 {
		t.Fatalf("array: %v %d", err, len(recs))
	}
	if _, err := r.ctl.SubmitArray(sleepSpec("bad", 10*des.Second, 60*des.Second), 0); err == nil {
		t.Fatal("zero-size array must fail")
	}
	r.ctl.Run()
	r.eng.Run(des.TimeFromSeconds(600))
	for i, rec := range recs {
		if rec.State != StateCompleted {
			t.Fatalf("array element %d: %v", i, rec.State)
		}
	}
}

func TestWriteAccounting(t *testing.T) {
	r := newRig(t, 2, sched.NodePolicy{TotalNodes: 2}, DefaultConfig())
	done, _ := r.ctl.Submit(sleepSpec("done", 10*des.Second, 60*des.Second))
	_, _ = r.ctl.Submit(JobSpec{Name: "writer", Nodes: 1, Limit: 600 * des.Second,
		Program: cluster.WriteProgram{Threads: 1, BytesPerThread: 100 * (1 << 30)}})
	r.ctl.Run()
	r.eng.Run(des.TimeFromSeconds(30)) // done finished, writer running
	pendingSpec := sleepSpec("queued", 10*des.Second, 60*des.Second)
	pendingSpec.DependsOn = []string{done.ID}
	_, _ = r.ctl.Submit(sleepSpec("held", 10*des.Second, 60*des.Second))
	var buf bytes.Buffer
	if err := r.ctl.WriteAccounting(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"JobID", "COMPLETED", "RUNNING", "job-00001", "done", "writer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("accounting missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 4 { // header + 3 jobs
		t.Fatalf("accounting lines: %d\n%s", lines, out)
	}
}

func TestMultifactorAgeRaisesPriority(t *testing.T) {
	m, err := NewMultifactorPriority(10, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := &JobRecord{Submit: 0, Spec: JobSpec{Nodes: 1}}
	early := m.Priority(r, des.TimeFromSeconds(3600))
	late := m.Priority(r, des.TimeFromSeconds(36000))
	if late <= early {
		t.Fatalf("age must raise priority: %d vs %d", early, late)
	}
}

func TestMultifactorValidation(t *testing.T) {
	if _, err := NewMultifactorPriority(-1, 0, 0, 0); err == nil {
		t.Fatal("negative weight must fail")
	}
	if _, err := NewMultifactorPriority(0, 0, 0, -des.Second); err == nil {
		t.Fatal("negative half-life must fail")
	}
	m, _ := NewMultifactorPriority(0, 0, 0, 0)
	if m.HalfLife != 7*24*des.Hour {
		t.Fatal("default half-life")
	}
}

func TestMultifactorUsageDecay(t *testing.T) {
	m, _ := NewMultifactorPriority(0, 0, 1, des.Hour)
	heavy := &JobRecord{Spec: JobSpec{User: "alice", Nodes: 10}, Start: 0, End: des.TimeFromSeconds(3600)}
	heavy.State = StateCompleted
	m.JobEnded(heavy)
	if got := m.Usage("alice"); got < 9.9 || got > 10.1 {
		t.Fatalf("usage = %v node-hours, want 10", got)
	}
	// One half-life later the charge has halved.
	r := &JobRecord{Spec: JobSpec{User: "alice", Nodes: 1}}
	_ = m.Priority(r, des.TimeFromSeconds(2*3600))
	if got := m.Usage("alice"); got < 4.9 || got > 5.1 {
		t.Fatalf("decayed usage = %v, want ~5", got)
	}
}

func TestFairShareReordersUsers(t *testing.T) {
	m, _ := NewMultifactorPriority(0, 0, 100, des.Hour)
	cfg := DefaultConfig()
	cfg.Priority = m
	r := newRig(t, 1, sched.NodePolicy{TotalNodes: 1}, cfg)
	// Alice burns node-hours first.
	aliceJob := sleepSpec("alice1", 600*des.Second, 900*des.Second)
	aliceJob.User = "alice"
	_, _ = r.ctl.Submit(aliceJob)
	r.ctl.Run()
	r.eng.Run(des.TimeFromSeconds(700))
	// Now alice and bob queue behind a running job; bob (no usage) must
	// win despite alice submitting first.
	blocker := sleepSpec("blocker", 300*des.Second, 600*des.Second)
	_, _ = r.ctl.Submit(blocker)
	r.eng.Run(des.TimeFromSeconds(710))
	a2 := sleepSpec("alice2", 60*des.Second, 120*des.Second)
	a2.User = "alice"
	aliceRec, _ := r.ctl.Submit(a2)
	b := sleepSpec("bob1", 60*des.Second, 120*des.Second)
	b.User = "bob"
	bobRec, _ := r.ctl.Submit(b)
	r.eng.Run(des.TimeFromSeconds(3600))
	if aliceRec.State != StateCompleted || bobRec.State != StateCompleted {
		t.Fatalf("states: %v %v", aliceRec.State, bobRec.State)
	}
	if bobRec.Start >= aliceRec.Start {
		t.Fatalf("fair share must favour bob (start %v) over alice (start %v)",
			bobRec.Start, aliceRec.Start)
	}
}

func TestStaticPriorityDominatesMultifactor(t *testing.T) {
	m, _ := NewMultifactorPriority(10, 1, 1, des.Hour)
	r := &JobRecord{Spec: JobSpec{Nodes: 1, Priority: 5}}
	urgent := m.Priority(r, des.TimeFromSeconds(60))
	normal := m.Priority(&JobRecord{Spec: JobSpec{Nodes: 14}}, des.TimeFromSeconds(36000))
	if urgent <= normal {
		t.Fatalf("static priority must dominate: %d vs %d", urgent, normal)
	}
}

func TestWriteQueue(t *testing.T) {
	r := newRig(t, 2, sched.NodePolicy{TotalNodes: 2}, DefaultConfig())
	running, _ := r.ctl.Submit(sleepSpec("runner", 300*des.Second, 600*des.Second))
	dep := sleepSpec("depjob", 10*des.Second, 60*des.Second)
	r.ctl.Run()
	r.eng.Run(des.TimeFromSeconds(5))
	dep.DependsOn = []string{running.ID}
	_, _ = r.ctl.Submit(dep)
	_, _ = r.ctl.Submit(JobSpec{Name: "blocked", Nodes: 2, Limit: 60 * des.Second,
		Program: cluster.SleepProgram{D: 10 * des.Second}})
	r.eng.Run(des.TimeFromSeconds(10))
	var buf bytes.Buffer
	if err := r.ctl.WriteQueue(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"RUNNING", "PENDING", "Dependency", "Resources", "runner", "depjob", "blocked"} {
		if !strings.Contains(out, want) {
			t.Fatalf("squeue missing %q:\n%s", want, out)
		}
	}
}

func TestRateQuantileConservativeEstimates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RateQuantile = 1.0 // max observed rate
	r := newRig(t, 2, sched.IOAwarePolicy{TotalNodes: 2, ThroughputLimit: 5 * pfs.GiB}, cfg)
	// Build history with varying rates: the quantile must pick the top.
	r.svc.Pretrain("writer", 0.1*pfs.GiB, 30*des.Second)
	r.ctl.Run()
	for i := 0; i < 3; i++ {
		rec, _ := r.ctl.Submit(writeSpec("writer", 8, 10, 600*des.Second))
		r.eng.Run(r.eng.Now().Add(des.FromSeconds(300)))
		if rec.State != StateCompleted {
			t.Fatalf("writer %d: %v", i, rec.State)
		}
	}
	// The conservative estimate (max observed, ~2.5-3 GiB/s) blocks two
	// writers sharing a 5 GiB/s limit; the decayed EWMA might not.
	a, _ := r.ctl.Submit(writeSpec("writer", 8, 40, 900*des.Second))
	b, _ := r.ctl.Submit(writeSpec("writer", 8, 40, 900*des.Second))
	r.eng.Run(r.eng.Now().Add(des.FromSeconds(5)))
	if a.State != StateRunning {
		t.Fatalf("first writer: %v", a.State)
	}
	if b.State == StateRunning {
		t.Fatal("conservative quantile must serialize the writers")
	}
	// Bad quantile rejected.
	bad := DefaultConfig()
	bad.RateQuantile = 2
	if bad.Validate() == nil {
		t.Fatal("RateQuantile > 1 must fail")
	}
}
