package experiments

import (
	"testing"

	"wasched/internal/bb"
	"wasched/internal/pfs"
	"wasched/internal/sched"
	"wasched/internal/slurm"
	"wasched/internal/workload"
)

// TestBurstBufferAblationPlanWins pins the headline claim of the BB tier:
// on the BB-bottlenecked grid, the plan policy's node+BB co-reservation
// beats every BB-blind policy on mean wait, across the corpus seeds.
func TestBurstBufferAblationPlanWins(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		rows, err := AblationBurstBuffer(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var plan float64
		bestBlind := -1.0
		for _, r := range rows {
			switch r.Result.Policy {
			case "plan":
				plan = r.Result.Sched.MeanWait
			case "default", "io-aware":
				if bestBlind < 0 || r.Result.Sched.MeanWait < bestBlind {
					bestBlind = r.Result.Sched.MeanWait
				}
			}
		}
		if bestBlind < 0 {
			t.Fatalf("seed %d: no BB-blind rows in %d-row grid", seed, len(rows))
		}
		if plan >= bestBlind {
			t.Errorf("seed %d: plan mean wait %.1fs did not beat best BB-blind %.1fs", seed, plan, bestBlind)
		}
	}
}

// TestFullSimBurstBufferEndToEnd drives the whole stack — plan policy,
// controller admission, bb.Tier stage-in/drain through the shared PFS,
// recorder BB series — and requires the run to pass every invariant,
// including the ledger-level BB checks summarize now merges in.
func TestFullSimBurstBufferEndToEnd(t *testing.T) {
	policy := sched.PlanPolicy{TotalNodes: Nodes, BBCapacity: 40 * pfs.GiB, ThroughputLimit: Limit20}
	opts := DefaultOptions(policy, 1)
	opts.BB = bb.Config{CapacityBytes: 40 * pfs.GiB}

	var specs []slurm.JobSpec
	for i := 0; i < 8; i++ {
		s := workload.WriteJob(4)
		s.BBBytes = 15 * pfs.GiB
		s.Fingerprint += "-bb15"
		specs = append(specs, s)
	}
	for i := 0; i < 10; i++ {
		specs = append(specs, workload.SleepJob())
	}

	res, err := RunWorkload(opts, specs, false, "bb-e2e")
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != len(specs) {
		t.Fatalf("completed %d of %d jobs", res.Jobs, len(specs))
	}
	if res.Recorder.BBOccupancy.Max() <= 0 {
		t.Fatal("BB occupancy series never rose above zero")
	}
	if res.Recorder.BBDrainRate.Max() <= 0 {
		t.Fatal("BB drain never moved bytes through the PFS")
	}
}

// TestFullSimBBAdmissionDefers squeezes three concurrent demands through a
// pool that holds two, under a BB-blind policy: the controller must defer
// (not fail) the third start, and the run still validates.
func TestFullSimBBAdmissionDefers(t *testing.T) {
	opts := DefaultOptions(sched.NodePolicy{TotalNodes: Nodes}, 1)
	opts.BB = bb.Config{CapacityBytes: 30 * pfs.GiB}

	var specs []slurm.JobSpec
	for i := 0; i < 6; i++ {
		s := workload.WriteJob(2)
		s.BBBytes = 12 * pfs.GiB
		s.Fingerprint += "-bb12"
		specs = append(specs, s)
	}
	res, err := RunWorkload(opts, specs, false, "bb-defer")
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs != len(specs) {
		t.Fatalf("completed %d of %d jobs", res.Jobs, len(specs))
	}
}
