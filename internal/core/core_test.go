package core

import (
	"strings"
	"testing"

	"wasched/internal/cluster"
	"wasched/internal/des"
	"wasched/internal/pfs"
	"wasched/internal/sched"
	"wasched/internal/slurm"
	"wasched/internal/workload"
)

func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.FS.NoiseSigma = 0
	cfg.FS.BurstBoost = 1
	return cfg
}

func TestPolicyKindString(t *testing.T) {
	cases := map[PolicyKind]string{
		Default: "default", EASY: "easy", IOAware: "io-aware",
		Adaptive: "adaptive", AdaptiveNaive: "adaptive-naive",
		TBF: "tbf", TBFStraggler: "tbf-straggler",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
	if !strings.Contains(PolicyKind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}

func TestNewSystemValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nodes = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("zero nodes must fail")
	}
	cfg = DefaultConfig()
	cfg.Scheduler.Policy = IOAware // no limit
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("io-aware without limit must fail")
	}
	cfg = DefaultConfig()
	cfg.Scheduler.Policy = Adaptive
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("adaptive without limit must fail")
	}
	cfg = DefaultConfig()
	cfg.Scheduler.Policy = PolicyKind(42)
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("unknown policy must fail")
	}
	cfg = DefaultConfig()
	cfg.FS.Volumes = 0
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("bad fs config must fail")
	}
	cfg = DefaultConfig()
	cfg.Scheduler.Policy = TBF // no token layer configured
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("tbf without capacity must fail")
	}
	cfg = DefaultConfig()
	cfg.Scheduler.Policy = TBFStraggler
	if _, err := NewSystem(cfg); err == nil {
		t.Fatal("tbf-straggler without capacity must fail")
	}
}

// TestTBFSystemLifecycle runs a small workload under the token-bucket
// layer end to end: jobs complete, the ledger conserves tokens, and the
// recorder picks up the per-job token accounts.
func TestTBFSystemLifecycle(t *testing.T) {
	for _, kind := range []PolicyKind{TBF, TBFStraggler} {
		cfg := quietConfig()
		cfg.Scheduler.Policy = kind
		cfg.TBF.CapacityBytesPerSec = 15 * pfs.GiB
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if sys.TBF == nil {
			t.Fatalf("%v: no limiter built", kind)
		}
		for i := 0; i < 4; i++ {
			sys.MustSubmit(workload.WriteJob(2))
		}
		sys.Start()
		if err := sys.RunToCompletion(50 * des.Hour); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		ledger := sys.TBF.Ledger()
		if len(ledger) != 4 {
			t.Fatalf("%v: ledger holds %d entries, want 4", kind, len(ledger))
		}
		var borrowed, lent float64
		for _, e := range ledger {
			if e.Delivered > e.Granted+1+1e-9*e.Granted {
				t.Fatalf("%v: job %s delivered %g > granted %g", kind, e.JobID, e.Delivered, e.Granted)
			}
			if e.Delivered <= 0 {
				t.Fatalf("%v: job %s delivered nothing", kind, e.JobID)
			}
			borrowed += e.Borrowed
			lent += e.Lent
		}
		if borrowed > lent+1 {
			t.Fatalf("%v: borrowed %g > lent %g", kind, borrowed, lent)
		}
		jt := sys.Recorder.Jobs()
		if len(jt) == 0 {
			t.Fatalf("%v: no job traces", kind)
		}
		granted := 0.0
		for _, j := range jt {
			granted += j.TBFGranted
		}
		if granted <= 0 {
			t.Fatalf("%v: job traces carry no token accounts", kind)
		}
	}
}

func TestPolicySelection(t *testing.T) {
	for _, tc := range []struct {
		kind PolicyKind
		want string
	}{
		{Default, "default"},
		{EASY, "default"}, // EASY is the node policy with BackfillMax=1
		{IOAware, "io-aware"},
		{Adaptive, "adaptive"},
		{AdaptiveNaive, "adaptive-naive"},
	} {
		cfg := quietConfig()
		cfg.Scheduler.Policy = tc.kind
		cfg.Scheduler.ThroughputLimit = 20 * pfs.GiB
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatalf("%v: %v", tc.kind, err)
		}
		if got := sys.Controller.Policy().Name(); got != tc.want {
			t.Fatalf("%v: policy %q, want %q", tc.kind, got, tc.want)
		}
	}
}

func TestCustomPolicyOverride(t *testing.T) {
	cfg := quietConfig()
	cfg.Scheduler.Custom = sched.IOAwarePolicy{TotalNodes: cfg.Nodes, ThroughputLimit: pfs.GiB}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Controller.Policy().Name() != "io-aware" {
		t.Fatal("custom policy must win")
	}
}

func TestSystemLifecycle(t *testing.T) {
	sys, err := NewSystem(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sys.Config().Nodes != 15 {
		t.Fatal("config accessor")
	}
	rec := sys.MustSubmit(workload.SleepJob())
	if sys.Submitted() != 1 {
		t.Fatal("submitted counter")
	}
	if err := sys.SubmitAt(workload.SleepJob(), des.TimeFromSeconds(100)); err != nil {
		t.Fatal(err)
	}
	if err := sys.SubmitAll([]slurm.JobSpec{workload.WriteJob(1)}); err != nil {
		t.Fatal(err)
	}
	if sys.Submitted() != 3 {
		t.Fatalf("submitted = %d", sys.Submitted())
	}
	sys.Start()
	if err := sys.RunToCompletion(10 * des.Hour); err != nil {
		t.Fatal(err)
	}
	if rec.State != slurm.StateCompleted {
		t.Fatalf("state: %v", rec.State)
	}
	if sys.Makespan() <= 0 {
		t.Fatal("makespan")
	}
	if sys.Recorder.Throughput.Len() == 0 {
		t.Fatal("recorder must have sampled")
	}
}

func TestRunToCompletionTimesOut(t *testing.T) {
	sys, err := NewSystem(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.MustSubmit(slurm.JobSpec{
		Name: "long", Nodes: 1, Limit: 10 * des.Hour,
		Program: cluster.SleepProgram{D: 5 * des.Hour},
	})
	sys.Start()
	if err := sys.RunToCompletion(des.Minute); err == nil {
		t.Fatal("must report unfinished jobs")
	}
}

func TestMustSubmitPanics(t *testing.T) {
	sys, _ := NewSystem(quietConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec must panic via MustSubmit")
		}
	}()
	sys.MustSubmit(slurm.JobSpec{Name: "bad"})
}

func TestSubmitAllStopsOnError(t *testing.T) {
	sys, _ := NewSystem(quietConfig())
	err := sys.SubmitAll([]slurm.JobSpec{workload.SleepJob(), {Name: "bad"}})
	if err == nil || !strings.Contains(err.Error(), "bad") {
		t.Fatalf("err: %v", err)
	}
}

func TestPretrainIsolated(t *testing.T) {
	cfg := quietConfig()
	cfg.Scheduler = SchedulerConfig{Policy: Adaptive, ThroughputLimit: 20 * pfs.GiB}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	specs := []slurm.JobSpec{workload.WriteJob(8), workload.SleepJob(), workload.WriteJob(8)}
	if err := sys.PretrainIsolated(specs); err != nil {
		t.Fatal(err)
	}
	est, ok := sys.Analytics.Estimate("writex8")
	if !ok || est.Rate <= 0 {
		t.Fatalf("pretrained estimate: %+v ok=%v", est, ok)
	}
	if _, ok := sys.Analytics.Estimate("sleep"); !ok {
		t.Fatal("sleep must be pretrained too")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() des.Time {
		cfg := DefaultConfig() // noise on: determinism must still hold
		cfg.Scheduler = SchedulerConfig{Policy: IOAware, ThroughputLimit: 15 * pfs.GiB}
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			sys.MustSubmit(workload.WriteJob(8))
		}
		for i := 0; i < 20; i++ {
			sys.MustSubmit(workload.SleepJob())
		}
		sys.Start()
		if err := sys.RunToCompletion(100 * des.Hour); err != nil {
			t.Fatal(err)
		}
		return sys.Makespan()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same config must reproduce exactly: %v vs %v", a, b)
	}
}

func TestFeedAll(t *testing.T) {
	sys, err := NewSystem(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]slurm.JobSpec, 40)
	for i := range specs {
		specs[i] = workload.SleepJob()
	}
	if err := sys.FeedAll(specs, 5, des.Second); err != nil {
		t.Fatal(err)
	}
	if sys.Submitted() != 40 {
		t.Fatalf("submitted: %d", sys.Submitted())
	}
	sys.Start()
	if err := sys.RunToCompletion(100 * des.Hour); err != nil {
		t.Fatal(err)
	}
	if sys.Controller.DoneCount() != 40 {
		t.Fatalf("done: %d", sys.Controller.DoneCount())
	}
	if err := sys.FeedAll(specs, 0, des.Second); err == nil {
		t.Fatal("bad depth must fail")
	}
}
