// Package restrack implements reservation tracking for backfill scheduling.
//
// Its central type is Profile, a piecewise-constant function of simulation
// time representing the committed usage of one cluster-wide resource
// (nodes, Lustre bandwidth, or the "adjusted" bandwidth of the two-group
// approximation). The node tracker NT, the Lustre throughput tracker LT
// (paper Algorithm 2) and the adjusted tracker AT (paper Algorithm 5) are
// typed wrappers around Profile.
package restrack

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"wasched/internal/des"
)

// point is a breakpoint: the profile holds value v from time t (inclusive)
// until the next breakpoint (exclusive).
type point struct {
	t des.Time
	v float64
}

// Profile is a piecewise-constant usage function over simulation time.
// It starts at zero everywhere; Add superimposes box functions. The zero
// value is ready to use.
//
// Profiles tolerate the floating-point drift inherent in adding and
// removing many bandwidth reservations: all capacity comparisons use a
// relative tolerance (see fits).
type Profile struct {
	pts []point // sorted by t; invariant: len==0 or pts[0].v may be any value, value before pts[0].t is 0
}

// NewProfile returns an empty profile (zero usage everywhere).
func NewProfile() *Profile { return &Profile{} }

// Len returns the number of breakpoints, exposed for capacity diagnostics.
func (p *Profile) Len() int { return len(p.pts) }

// Clone returns a deep copy of the profile.
func (p *Profile) Clone() *Profile {
	q := &Profile{pts: make([]point, len(p.pts))}
	copy(q.pts, p.pts)
	return q
}

// Reset removes all reservations.
func (p *Profile) Reset() { p.pts = p.pts[:0] }

// CopyFrom replaces p's contents with src's, reusing p's backing array.
// It is the per-round snapshot step of incremental backfill sessions:
// copying a base profile into a reusable working profile is a single
// memmove, where rebuilding it from the running set is one Add per job.
func (p *Profile) CopyFrom(src *Profile) {
	p.pts = append(p.pts[:0], src.pts...)
}

// TrimBefore drops breakpoints strictly before the last one at or before
// t, bounding a long-lived profile's memory to its active horizon. Values
// at every time >= t are unchanged (bit-identically: surviving breakpoints
// are moved, not recomputed); queries before t afterwards see a zero
// prefix and are no longer meaningful.
func (p *Profile) TrimBefore(t des.Time) {
	i := p.locate(t)
	if i <= 0 {
		return
	}
	n := copy(p.pts, p.pts[i:])
	p.pts = p.pts[:n]
}

// locate returns the index of the last breakpoint with t <= x, or -1 when x
// precedes all breakpoints.
func (p *Profile) locate(x des.Time) int {
	return sort.Search(len(p.pts), func(i int) bool { return p.pts[i].t > x }) - 1
}

// ValueAt returns the usage at time t.
func (p *Profile) ValueAt(t des.Time) float64 {
	i := p.locate(t)
	if i < 0 {
		return 0
	}
	return p.pts[i].v
}

// ensureBreak inserts a breakpoint at t (if absent) whose value equals the
// profile's value at t, and returns its index.
func (p *Profile) ensureBreak(t des.Time) int {
	i := p.locate(t)
	if i >= 0 && p.pts[i].t == t {
		return i
	}
	v := 0.0
	if i >= 0 {
		v = p.pts[i].v
	}
	p.pts = append(p.pts, point{})
	copy(p.pts[i+2:], p.pts[i+1:])
	p.pts[i+1] = point{t: t, v: v}
	return i + 1
}

// Add superimposes delta over the half-open interval [lo, hi). Negative
// deltas release previously added reservations. Empty or inverted intervals
// are no-ops. hi may be des.MaxTime for an open-ended reservation.
func (p *Profile) Add(lo, hi des.Time, delta float64) {
	if hi <= lo || delta == 0 {
		return
	}
	i := p.ensureBreak(lo)
	var j int
	if hi == des.MaxTime {
		j = len(p.pts) // no closing breakpoint: delta extends forever
	} else {
		j = p.ensureBreak(hi)
	}
	for k := i; k < j; k++ {
		p.pts[k].v += delta
	}
	p.compact()
}

// compact merges adjacent breakpoints whose values became (numerically)
// identical and drops a leading zero run, bounding memory over long runs.
func (p *Profile) compact() {
	if len(p.pts) == 0 {
		return
	}
	out := p.pts[:0]
	prev := 0.0 // value before the first breakpoint is 0
	for _, pt := range p.pts {
		if sameValue(pt.v, prev) {
			continue
		}
		out = append(out, pt)
		prev = pt.v
	}
	p.pts = out
}

// sameValue reports whether two usage values are equal within the
// accumulated floating-point tolerance of reservation arithmetic.
func sameValue(a, b float64) bool {
	d := math.Abs(a - b)
	if d == 0 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= 1e-9*math.Max(scale, 1)
}

// fits reports whether usage+need stays within limit, with tolerance.
func fits(usage, need, limit float64) bool {
	slack := 1e-9 * math.Max(math.Abs(limit), 1)
	return usage+need <= limit+slack
}

// MaxOver returns the maximum usage over [lo, hi). An empty interval
// yields the value at lo.
func (p *Profile) MaxOver(lo, hi des.Time) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	max := p.ValueAt(lo)
	i := p.locate(lo) + 1
	for ; i < len(p.pts) && p.pts[i].t < hi; i++ {
		if p.pts[i].v > max {
			max = p.pts[i].v
		}
	}
	return max
}

// IntegralOver returns the integral of usage over [lo, hi) in value-seconds
// (e.g. node·s or byte). hi must be finite.
func (p *Profile) IntegralOver(lo, hi des.Time) float64 {
	if hi <= lo {
		return 0
	}
	total := 0.0
	t := lo
	v := p.ValueAt(lo)
	i := p.locate(lo) + 1
	for ; i < len(p.pts) && p.pts[i].t < hi; i++ {
		total += v * p.pts[i].t.Sub(t).Seconds()
		t = p.pts[i].t
		v = p.pts[i].v
	}
	total += v * hi.Sub(t).Seconds()
	return total
}

// EarliestFit returns the earliest time t >= from such that for every
// instant u in [t, t+dur), usage(u) + need <= limit. It returns
// (des.MaxTime, false) when no such time exists, which can only happen when
// need exceeds limit net of the profile's value at infinity.
//
// This is the primitive behind EarliestStartTime in paper Algorithms 1, 4
// and 7.
func (p *Profile) EarliestFit(from des.Time, dur des.Duration, need, limit float64) (des.Time, bool) {
	if dur < 0 {
		panic("restrack: negative duration")
	}
	t := from
	for {
		end := t.Add(des.Duration(dur))
		// Scan [t, end) for a violation.
		viol := des.Time(-1)
		if !fits(p.ValueAt(t), need, limit) {
			viol = t
		} else {
			for i := p.locate(t) + 1; i < len(p.pts) && p.pts[i].t < end; i++ {
				if !fits(p.pts[i].v, need, limit) {
					viol = p.pts[i].t
					break
				}
			}
		}
		if viol < 0 {
			return t, true
		}
		// Advance past the violating segment: the earliest possible fit
		// starts at the next breakpoint after viol where usage drops enough.
		next := des.MaxTime
		for i := p.locate(viol) + 1; i < len(p.pts); i++ {
			if fits(p.pts[i].v, need, limit) {
				next = p.pts[i].t
				break
			}
		}
		if next == des.MaxTime {
			// Usage never drops enough after viol; beyond the final
			// breakpoint the value is the last value, already checked.
			return des.MaxTime, false
		}
		t = next
	}
}

// String renders the profile for diagnostics, e.g. "[0 @10s→3 @25s→0]".
func (p *Profile) String() string {
	var b strings.Builder
	b.WriteString("[0")
	for _, pt := range p.pts {
		fmt.Fprintf(&b, " @%.3fs→%.4g", pt.t.Seconds(), pt.v)
	}
	b.WriteString("]")
	return b.String()
}
