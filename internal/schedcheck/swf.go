package schedcheck

import (
	"fmt"
	"io"

	"wasched/internal/des"
	"wasched/internal/workload"
)

// SimJobsFromSWF converts parsed SWF records into lightweight replay jobs
// for Replay. It mirrors workload.ConvertSWF exactly — same node
// conversion, same limit rule, same deterministic I/O-assignment stream —
// so the jobs that carry synthetic I/O here are the very jobs that would
// carry it in the full prototype. The replay has no file-system model, so
// an I/O job's rate is its write volume averaged over its runtime
// (IOShare·IORate for an isolated job).
func SimJobsFromSWF(records []workload.SWFRecord, opts workload.SWFOptions) ([]SimJob, workload.SWFQuirks, error) {
	if err := opts.Validate(); err != nil {
		return nil, workload.SWFQuirks{}, err
	}
	rng := des.NewRNG(opts.Seed, "workload/swf")
	bbRng := des.NewRNG(opts.Seed, workload.SWFBBStream)
	var quirks workload.SWFQuirks
	jobs := make([]SimJob, 0, len(records))
	seen := make(map[string]int, len(records))
	for _, rec := range records {
		if workload.SWFNodes(rec, opts) > opts.MaxNodes {
			quirks.TooWide++
			continue // too-wide jobs consume no I/O draw
		}
		sh := workload.ShapeSWF(rec, opts, rng.Float64())
		id := fmt.Sprintf("swf-%d", rec.JobNo)
		// Archive job numbers are unique in theory; malformed traces repeat
		// them, and replay identity (queue order, the starts map) needs
		// unique IDs.
		if n := seen[id]; n > 0 {
			seen[id] = n + 1
			id = fmt.Sprintf("%s.%d", id, n+1)
		} else {
			seen[id] = 1
		}
		j := SimJob{
			ID:          id,
			Nodes:       sh.Nodes,
			Limit:       des.FromSeconds(sh.Limit),
			Actual:      des.FromSeconds(sh.Runtime),
			Submit:      des.TimeFromSeconds(rec.Submit),
			Fingerprint: fmt.Sprintf("swf-cpu-n%d", sh.Nodes),
			BBBytes:     workload.SWFBBBytes(sh.Nodes, opts, bbRng.Float64()),
		}
		if sh.DoesIO {
			j.Fingerprint = fmt.Sprintf("swf-io-n%d", sh.Nodes)
			j.Rate = sh.Bytes / sh.Runtime
			j.EstRate = j.Rate
		}
		if j.BBBytes > 0 {
			j.Fingerprint += "-bb"
		}
		jobs = append(jobs, j)
		if opts.MaxJobs > 0 && len(jobs) >= opts.MaxJobs {
			break
		}
	}
	return jobs, quirks, nil
}

// LoadSWFSimJobs reads an SWF trace and converts it for Replay, merging
// the row-level quirks into the conversion's.
func LoadSWFSimJobs(r io.Reader, opts workload.SWFOptions) ([]SimJob, workload.SWFQuirks, error) {
	records, quirks, err := workload.ParseSWFRecords(r)
	if err != nil {
		return nil, quirks, err
	}
	jobs, conv, err := SimJobsFromSWF(records, opts)
	if err != nil {
		return nil, quirks, err
	}
	quirks.TooWide += conv.TooWide
	return jobs, quirks, nil
}
