package pfs

import (
	"fmt"
	"testing"

	"wasched/internal/des"
)

// BenchmarkRateSolver measures one recompute with 120 active streams (the
// paper's worst case: 15 write×8 jobs).
func BenchmarkRateSolver(b *testing.B) {
	eng := des.NewEngine()
	cfg := DefaultConfig()
	fs, _ := New(eng, cfg, 1)
	rng := des.NewRNG(1, "bench")
	for i := 0; i < 120; i++ {
		fs.StartStream(fmt.Sprintf("n%d", i%15), Write, fs.RandomVolume(rng), 1e15, nil)
	}
	eng.Run(des.TimeFromSeconds(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.sync()
		fs.recompute()
	}
}

// BenchmarkSimulatedHour runs one simulated hour of 32 looping writers end
// to end (events, noise, completions).
func BenchmarkSimulatedHour(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := des.NewEngine()
		fs, _ := New(eng, DefaultConfig(), uint64(i+1))
		rng := des.NewRNG(uint64(i+1), "bench")
		var launch func(slot int)
		launch = func(slot int) {
			fs.StartStream(fmt.Sprintf("n%d", slot%15), Write, fs.RandomVolume(rng), 10*GiB,
				func() { launch(slot) })
		}
		for s := 0; s < 32; s++ {
			launch(s)
		}
		eng.Run(des.TimeFromSeconds(3600))
	}
}
