// Package canary implements a file-system health probe in the spirit of
// the AI4IO suite's "canary" application that the paper cites as related
// work (§VIII): a small periodic I/O probe, run from the control node,
// whose completion latency is tracked against a learned healthy baseline;
// sustained latency inflation flags an intermittent file-system
// degradation event.
//
// The canary is an optional extension — the paper's scheduler does not
// consume its events — but it closes the loop for the failure-injection
// experiments: pfs.SetVolumeDegradation / SetGlobalDegradation create the
// events, the canary detects them.
package canary

import (
	"fmt"

	"wasched/internal/des"
	"wasched/internal/pfs"
)

// Config tunes the probe.
type Config struct {
	// Interval between probes.
	Interval des.Duration
	// ProbeBytes per stream; kept small so the probe itself does not
	// perturb the file system.
	ProbeBytes float64
	// Streams per probe; each targets a random volume, so repeated probes
	// cover the volume population.
	Streams int
	// Threshold is the latency inflation (relative to the baseline) that
	// flags degradation, e.g. 2.5.
	Threshold float64
	// BaselineAlpha is the EWMA weight for healthy-latency updates.
	BaselineAlpha float64
	// WarmupProbes are the initial probes used purely to learn the
	// baseline (no detection).
	WarmupProbes int
}

// DefaultConfig probes every 60 s with 4 × 256 MiB streams, flags 2.5×
// latency inflation, and learns over the first 5 probes.
func DefaultConfig() Config {
	return Config{
		Interval:      60 * des.Second,
		ProbeBytes:    256 * (1 << 20),
		Streams:       4,
		Threshold:     2.5,
		BaselineAlpha: 0.3,
		WarmupProbes:  5,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Interval <= 0:
		return fmt.Errorf("canary: Interval must be positive, got %v", c.Interval)
	case c.ProbeBytes <= 0:
		return fmt.Errorf("canary: ProbeBytes must be positive, got %g", c.ProbeBytes)
	case c.Streams <= 0:
		return fmt.Errorf("canary: Streams must be positive, got %d", c.Streams)
	case c.Threshold <= 1:
		return fmt.Errorf("canary: Threshold must exceed 1, got %g", c.Threshold)
	case c.BaselineAlpha <= 0 || c.BaselineAlpha > 1:
		return fmt.Errorf("canary: BaselineAlpha must be in (0,1], got %g", c.BaselineAlpha)
	case c.WarmupProbes < 1:
		return fmt.Errorf("canary: WarmupProbes must be at least 1, got %d", c.WarmupProbes)
	}
	return nil
}

// Event is one probe outcome.
type Event struct {
	At       des.Time
	Latency  des.Duration
	Baseline des.Duration
	// Degraded is true when Latency exceeded Threshold × Baseline.
	Degraded bool
}

// Canary runs the periodic probe.
type Canary struct {
	eng     *des.Engine
	fs      *pfs.FileSystem
	node    string
	cfg     Config
	rng     *des.RNG
	onEvent func(Event)

	baseline     float64 // seconds; 0 until the first probe lands
	probes       int
	degradations int
	lastLatency  des.Duration
	inFlight     bool
	stop         func()
	streams      []*pfs.Stream
}

// Start launches the canary on the engine, probing from the given client
// node (the paper's control node, which is not a compute node). onEvent
// may be nil.
func Start(eng *des.Engine, fs *pfs.FileSystem, node string, cfg Config, seed uint64, onEvent func(Event)) (*Canary, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Canary{
		eng:     eng,
		fs:      fs,
		node:    node,
		cfg:     cfg,
		rng:     des.NewRNG(seed, "canary"),
		onEvent: onEvent,
	}
	c.stop = eng.Ticker(cfg.Interval, "canary/probe", func(des.Time) { c.probe() })
	return c, nil
}

// probe launches one probe unless the previous one is still in flight
// (an in-flight probe under severe degradation is itself the signal; the
// measurement completes whenever it completes).
func (c *Canary) probe() {
	if c.inFlight {
		return
	}
	c.inFlight = true
	start := c.eng.Now()
	remaining := c.cfg.Streams
	c.streams = c.streams[:0]
	for i := 0; i < c.cfg.Streams; i++ {
		s := c.fs.StartStream(c.node, pfs.Write, c.fs.RandomVolume(c.rng), c.cfg.ProbeBytes, func() {
			remaining--
			if remaining == 0 {
				c.finish(start)
			}
		})
		c.streams = append(c.streams, s)
	}
}

func (c *Canary) finish(start des.Time) {
	c.inFlight = false
	latency := c.eng.Now().Sub(start)
	c.lastLatency = latency
	c.probes++
	ev := Event{At: c.eng.Now(), Latency: latency}
	sec := latency.Seconds()
	switch {
	case c.probes <= c.cfg.WarmupProbes || c.baseline == 0:
		// Learning phase: fold everything into the baseline.
		if c.baseline == 0 {
			c.baseline = sec
		} else {
			c.baseline = c.cfg.BaselineAlpha*sec + (1-c.cfg.BaselineAlpha)*c.baseline
		}
	case sec > c.cfg.Threshold*c.baseline:
		ev.Degraded = true
		c.degradations++
		// Degraded probes do not pollute the healthy baseline.
	default:
		c.baseline = c.cfg.BaselineAlpha*sec + (1-c.cfg.BaselineAlpha)*c.baseline
	}
	ev.Baseline = des.FromSeconds(c.baseline)
	if c.onEvent != nil {
		c.onEvent(ev)
	}
}

// Baseline returns the learned healthy probe latency.
func (c *Canary) Baseline() des.Duration { return des.FromSeconds(c.baseline) }

// LastLatency returns the most recent probe's latency.
func (c *Canary) LastLatency() des.Duration { return c.lastLatency }

// Probes returns how many probes have completed.
func (c *Canary) Probes() int { return c.probes }

// Degradations returns how many probes were flagged as degraded.
func (c *Canary) Degradations() int { return c.degradations }

// Stop halts probing and cancels any in-flight probe streams.
func (c *Canary) Stop() {
	c.stop()
	for _, s := range c.streams {
		c.fs.CancelStream(s)
	}
	c.inFlight = false
}
