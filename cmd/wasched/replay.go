// The `wasched replay` subcommand: stream a Standard Workload Format
// trace (Parallel Workloads Archive, optionally gzipped) through the
// lightweight round-based replayer and report scheduling throughput per
// policy. This is the archive-scale path — a 10⁵–10⁶ job trace replays in
// minutes because the replayer runs on incremental scheduling state
// (sched.Session) instead of the full prototype's file-system model.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"wasched/internal/des"
	"wasched/internal/pfs"
	"wasched/internal/sched"
	"wasched/internal/schedcheck"
	"wasched/internal/workload"
)

// replayPolicies builds the named policy set for a replay. bbCap is the
// burst-buffer pool the BB-aware policies plan against (0 with BB off).
func replayPolicies(name string, nodes int, limit, bbCap float64) ([]sched.Policy, []float64, error) {
	mk := func(label string) (sched.Policy, float64, error) {
		switch label {
		case "tbf":
			return sched.TBFPolicy{TotalNodes: nodes}, 0, nil
		case "tbf-straggler":
			return sched.TBFPolicy{TotalNodes: nodes, Straggler: true}, 0, nil
		case "default":
			return sched.NodePolicy{TotalNodes: nodes}, 0, nil
		case "io-aware":
			return sched.IOAwarePolicy{TotalNodes: nodes, ThroughputLimit: limit}, limit, nil
		case "adaptive":
			return sched.AdaptivePolicy{TotalNodes: nodes, ThroughputLimit: limit, TwoGroup: true}, limit, nil
		case "adaptive-naive":
			return sched.AdaptivePolicy{TotalNodes: nodes, ThroughputLimit: limit, TwoGroup: false}, limit, nil
		case "plan":
			return sched.PlanPolicy{TotalNodes: nodes, BBCapacity: bbCap, ThroughputLimit: limit}, limit, nil
		case "bb-io-aware":
			return sched.BBAwarePolicy{
				Inner:    sched.IOAwarePolicy{TotalNodes: nodes, ThroughputLimit: limit},
				Capacity: bbCap,
			}, limit, nil
		default:
			return nil, 0, fmt.Errorf("unknown policy %q (want default, io-aware, adaptive, adaptive-naive, plan, bb-io-aware, tbf, tbf-straggler or all)", label)
		}
	}
	labels := []string{name}
	if name == "all" {
		labels = []string{"default", "io-aware", "adaptive", "adaptive-naive"}
	}
	policies := make([]sched.Policy, 0, len(labels))
	limits := make([]float64, 0, len(labels))
	for _, l := range labels {
		p, lim, err := mk(l)
		if err != nil {
			return nil, nil, err
		}
		policies = append(policies, p)
		limits = append(limits, lim)
	}
	return policies, limits, nil
}

// runReplay implements `wasched replay <trace.swf[.gz]> [flags]`.
func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	policy := fs.String("policy", "all", "policy: default, io-aware, adaptive, adaptive-naive, plan, bb-io-aware, tbf, tbf-straggler or all")
	nodes := fs.Int("nodes", 15, "cluster size (the paper's Stria partition)")
	coresPerNode := fs.Int("cores-per-node", 56, "cores per node for SWF processor→node conversion")
	limitGiB := fs.Float64("limit-gib", 20, "policy throughput limit R_limit, GiB/s")
	interval := fs.Float64("interval", 30, "scheduling round period, seconds")
	maxJobs := fs.Int("max-jobs", 0, "truncate the trace (0 = all jobs)")
	ioFraction := fs.Float64("io-fraction", 0.4, "fraction of jobs given synthetic I/O")
	seed := fs.Uint64("seed", 1, "seed for the deterministic I/O assignment")
	bbCapGiB := fs.Float64("bb-capacity-gib", 0, "shared burst-buffer pool, GiB (0 = BB off)")
	bbFraction := fs.Float64("bb-fraction", 0, "fraction of jobs given a synthetic BB reservation")
	bbPerNode := fs.Float64("bb-gib-per-node", 4, "BB reservation per node for assigned jobs, GiB")
	bbStage := fs.Float64("bb-stage-gibps", 2, "BB stage-in rate, GiB/s (0 = instant)")
	bbDrain := fs.Float64("bb-drain-gibps", 1, "BB stage-out drain rate, GiB/s (0 = instant)")
	tbfCapGiB := fs.Float64("tbf-capacity-gib", 0, "token-bucket aggregate fill rate, GiB/s (0 = auto for tbf policies, off otherwise)")
	tbfBurst := fs.Float64("tbf-burst-s", 0, "token-bucket burst depth, seconds of fill (0 = default 60)")
	tbfServers := fs.Int("tbf-servers", 0, "token-layer server count for straggler health (0 = default 8)")
	maxRounds := fs.Int("max-rounds", 0, "round budget (0 = sized from the trace span)")
	checks := fs.Bool("checks", false, "run the per-round invariant checks (slower)")
	quiet := fs.Bool("quiet", false, "suppress live progress on stderr")
	// Accept flags before or after the trace path, like `wasched run`.
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: wasched replay <trace.swf[.gz]> [-policy P] [-nodes N] [-limit-gib G] ...")
	}
	path := rest[0]
	if err := fs.Parse(rest[1:]); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: wasched replay <trace.swf[.gz]> [-policy P] [-nodes N] [-limit-gib G] ...")
	}

	if *bbFraction > 0 && *bbCapGiB <= 0 {
		return fmt.Errorf("-bb-fraction needs -bb-capacity-gib: jobs with BB demand can never start against an absent pool")
	}
	// The tbf policies need a token pool; default it to the corpus fill
	// capacity so `-policy tbf` works out of the box on any trace.
	if (*policy == "tbf" || *policy == "tbf-straggler") && *tbfCapGiB <= 0 {
		*tbfCapGiB = schedcheck.CorpusTBFCapacity / pfs.GiB
	}
	opts := workload.DefaultSWFOptions()
	opts.CoresPerNode = *coresPerNode
	opts.MaxNodes = *nodes
	opts.IOFraction = *ioFraction
	opts.MaxJobs = *maxJobs
	opts.Seed = *seed
	if *bbFraction > 0 {
		opts.BBFraction = *bbFraction
		opts.BBGiBPerNode = *bbPerNode
	}
	limit := *limitGiB * pfs.GiB
	bbCap := *bbCapGiB * pfs.GiB

	f, err := workload.OpenSWF(path)
	if err != nil {
		return err
	}
	//waschedlint:allow checkederr the trace is opened read-only; close cannot lose data
	defer f.Close()
	loadStart := time.Now()
	jobs, quirks, err := schedcheck.LoadSWFSimJobs(f, opts)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		return fmt.Errorf("%s: no usable jobs (quirks: %s)", path, quirks)
	}
	fmt.Printf("loaded %s: %d jobs in %.2fs (quirks: %s)\n",
		path, len(jobs), time.Since(loadStart).Seconds(), quirks)

	policies, limits, err := replayPolicies(*policy, *nodes, limit, bbCap)
	if err != nil {
		return err
	}
	for i, p := range policies {
		cfg := schedcheck.ReplayConfig{
			Policy:          p,
			Options:         sched.Options{MaxJobTest: sched.SlurmDefaultTestLimit},
			Interval:        des.FromSeconds(*interval),
			Nodes:           *nodes,
			Limit:           limits[i],
			MaxRounds:       *maxRounds,
			SkipRoundChecks: !*checks,
		}
		if bbCap > 0 {
			cfg.BBCapacity = bbCap
			cfg.BBStageRate = *bbStage * pfs.GiB
			cfg.BBDrainRate = *bbDrain * pfs.GiB
		}
		if *tbfCapGiB > 0 {
			cfg.TBFCapacity = *tbfCapGiB * pfs.GiB
			cfg.TBFBurst = des.FromSeconds(*tbfBurst)
			if cfg.TBFServers = *tbfServers; cfg.TBFServers <= 0 {
				cfg.TBFServers = schedcheck.CorpusTBFServers
			}
			if tp, ok := p.(sched.TBFPolicy); ok {
				cfg.TBFStraggler = tp.Straggler
			}
		}
		if cfg.MaxRounds == 0 {
			cfg.MaxRounds = replayRoundBudget(jobs, cfg.Interval)
		}
		if !*quiet {
			last := time.Now()
			cfg.Progress = func(done int, now des.Time) {
				if time.Since(last) < 2*time.Second {
					return
				}
				last = time.Now()
				fmt.Fprintf(os.Stderr, "  %-16s %8d/%d jobs  t=%.0fh\r",
					p.Name(), done, len(jobs), now.Seconds()/3600)
			}
		}
		wall := time.Now()
		res := schedcheck.Replay(jobs, cfg)
		elapsed := time.Since(wall).Seconds()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%60s\r", "")
		}
		fmt.Printf("%-16s %8d jobs  %9d rounds  makespan %8.1fh  %6.2fs wall  %9.0f jobs/s  %9.0f rounds/s\n",
			res.Policy, len(res.Jobs), res.Rounds, res.Makespan.Seconds()/3600,
			elapsed, float64(len(res.Jobs))/elapsed, float64(res.Rounds)/elapsed)
		if n := len(res.Check.Violations); n > 0 {
			for _, v := range res.Check.Violations {
				fmt.Printf("  violation %s: %s\n", v.Invariant, v.Detail)
			}
			return fmt.Errorf("%s: %d invariant violations", res.Policy, n)
		}
	}
	return nil
}

// replayRoundBudget sizes MaxRounds from the trace: the whole submit span
// plus generous drain time, so a healthy replay never trips the budget but
// a starved queue still terminates.
func replayRoundBudget(jobs []schedcheck.SimJob, interval des.Duration) int {
	var span des.Time
	for _, j := range jobs {
		if end := j.Submit.Add(j.Limit); end > span {
			span = end
		}
	}
	rounds := int(span/des.Time(interval)) + 1
	// Drain allowance: every job serialized after the last arrival.
	var tail des.Duration
	for _, j := range jobs {
		tail += j.Limit
	}
	rounds += int(tail/interval) + 1000
	return rounds
}
